//! Batched inference sessions: one builder, one `run` call, aggregate
//! statistics — regardless of which backend executes.
//!
//! A [`Session`] is the front door of the execution API: it validates the
//! program against the configuration once, constructs the chosen backend
//! (functional, RTL, analytic, or a sharded fleet of those), and then
//! treats it purely through the [`MacroBackend`] contract — so
//! [`SessionStats`] (tokens/s, total energy, p50/p99 token latency)
//! accumulate identically whatever executes the batches, and swapping
//! [`BackendKind`]s never changes a single output bit.

use crate::backend::{validate_program, BackendFactory, BackendKind, MacroBackend};
use crate::batch::{BatchResult, TokenBatch};
use crate::cache::CacheStats;
use crate::error::BackendError;
use crate::pool::{PoolHealth, ReplicaFactory, ReplicaPool, ServePolicy};
use crate::queue::{QueuePolicy, ServeQueue};
use core::fmt;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
use maddpipe_tech::units::{Joules, Seconds};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builder for a [`Session`]; see [`Session::builder`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    cfg: MacroConfig,
    program: Option<MacroProgram>,
    kind: BackendKind,
}

impl SessionBuilder {
    /// Sets the program to load into the macro (required).
    #[must_use]
    pub fn program(mut self, program: MacroProgram) -> SessionBuilder {
        self.program = Some(program);
        self
    }

    /// Picks the executing backend (defaults to single-threaded
    /// functional).
    #[must_use]
    pub fn backend(mut self, kind: BackendKind) -> SessionBuilder {
        self.kind = kind;
        self
    }

    /// Validates the program against the configuration and constructs the
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::MissingProgram`] when no program was set,
    /// and the constructor errors of the chosen backend
    /// ([`BackendError::ProgramMismatch`],
    /// [`BackendError::MalformedProgram`]).
    pub fn build(self) -> Result<Session, BackendError> {
        let program = self.program.ok_or(BackendError::MissingProgram)?;
        let backend = self.kind.build(&self.cfg, program.clone())?;
        Ok(Session {
            cfg: self.cfg,
            backend,
            // The recipe lets `into_serving` rebuild this exact backend
            // on the queue's dispatcher thread (netlists are not `Send`).
            recipe: Some((program, self.kind)),
            stats: SessionStats::default(),
        })
    }

    /// Builds straight into an async [`ServeQueue`]: the program is
    /// validated here (fail fast, on the caller's thread) and the
    /// `(program, kind)` recipe goes directly to the queue's dispatcher,
    /// which constructs the one backend that will actually serve.
    /// Prefer this over `build()?.into_serving(policy)` when the session
    /// is only ever used through the queue — it skips building (and
    /// discarding) a caller-side backend, which for RTL kinds is a full
    /// netlist elaboration.
    ///
    /// # Errors
    ///
    /// As [`SessionBuilder::build`], plus the queue's own construction
    /// failures ([`BackendError::QueueClosed`] when the dispatcher dies
    /// before reporting ready).
    pub fn into_serving(self, policy: QueuePolicy) -> Result<ServeQueue, BackendError> {
        let program = self.program.ok_or(BackendError::MissingProgram)?;
        validate_program(&self.cfg, &program)?;
        let cfg = self.cfg;
        let ns = cfg.ns;
        let kind = self.kind;
        let factory: BackendFactory = Box::new(move || kind.build(&cfg, program));
        ServeQueue::from_factory(policy, ns, factory)
    }

    /// Builds straight into a [`ReplicaPool`]: the program is validated
    /// here (fail fast, on the caller's thread) and the `(program,
    /// kind)` recipe is cloned into [`ServePolicy::replicas`] rebuildable
    /// recipes, each constructing its backend on its own replica thread.
    /// Because the recipe stays callable, the pool can respawn a replica
    /// whose backend panicked, up to the
    /// [`RecoveryPolicy`](crate::pool::RecoveryPolicy) restart budget.
    /// Prefer this over `build()?.into_pool(policy)` when the session is
    /// only ever used through the pool.
    ///
    /// # Errors
    ///
    /// As [`SessionBuilder::build`], plus the pool's own construction
    /// failures ([`BackendError::QueueClosed`] when a replica dies
    /// before reporting ready).
    pub fn into_pool(self, policy: ServePolicy) -> Result<ReplicaPool, BackendError> {
        let program = self.program.ok_or(BackendError::MissingProgram)?;
        validate_program(&self.cfg, &program)?;
        let cfg = self.cfg;
        let ns = cfg.ns;
        let kind = self.kind;
        let recipes = (0..policy.replicas.max(1))
            .map(|_| {
                let cfg = cfg.clone();
                let program = program.clone();
                let recipe: ReplicaFactory = Arc::new(move || kind.build(&cfg, program.clone()));
                recipe
            })
            .collect();
        ReplicaPool::from_recipes(policy, ns, recipes)
    }
}

/// A long-lived inference session: owns one programmed backend, accepts
/// [`TokenBatch`]es, and accumulates [`SessionStats`] across batches.
///
/// ```
/// use maddpipe_runtime::prelude::*;
/// use maddpipe_core::prelude::*;
///
/// let cfg = MacroConfig::new(2, 2);
/// let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
/// let mut session = Session::builder(cfg)
///     .program(program.clone())
///     .backend(BackendKind::Functional { workers: 2 })
///     .build()
///     .unwrap();
/// let batch = TokenBatch::random(2, 16, 1);
/// let result = session.run(&batch).unwrap();
/// assert_eq!(result.tokens[0].outputs,
///            program.reference_output(&batch.tokens()[0]));
/// assert_eq!(session.stats().tokens(), 16);
/// ```
pub struct Session {
    cfg: MacroConfig,
    backend: Box<dyn MacroBackend>,
    /// `(program, kind)` when built through the builder — what
    /// [`Session::into_serving`] rebuilds on the dispatcher thread.
    /// `None` for [`Session::from_backend`] sessions.
    recipe: Option<(MacroProgram, BackendKind)>,
    stats: SessionStats,
}

impl Session {
    /// Starts building a session for one macro configuration.
    pub fn builder(cfg: MacroConfig) -> SessionBuilder {
        SessionBuilder {
            cfg,
            program: None,
            kind: BackendKind::default(),
        }
    }

    /// Wraps a caller-constructed backend (downstream crates can implement
    /// [`MacroBackend`] and still get sessions and stats).
    pub fn from_backend(cfg: MacroConfig, backend: Box<dyn MacroBackend>) -> Session {
        Session {
            cfg,
            backend,
            recipe: None,
            stats: SessionStats::default(),
        }
    }

    /// Converts this session into an async [`ServeQueue`] so many client
    /// threads can share the backend: the session's `(program, backend
    /// kind)` recipe is rebuilt on the queue's dispatcher thread (which
    /// is what lets non-`Send` backends, i.e. netlists, serve), and the
    /// statistics accumulated so far carry over and keep growing as the
    /// queue serves.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QueueUnavailable`] for sessions made with
    /// [`Session::from_backend`] — a caller-constructed backend cannot
    /// be rebuilt on another thread; hand a factory to
    /// [`ServeQueue::from_factory`] instead. Construction failures of
    /// the rebuilt backend propagate as that backend's own errors.
    pub fn into_serving(self, policy: QueuePolicy) -> Result<ServeQueue, BackendError> {
        let (program, kind) = self.recipe.ok_or_else(|| BackendError::QueueUnavailable {
            reason: "session was built from a caller-constructed backend; \
                     use ServeQueue::from_factory"
                .into(),
        })?;
        let cfg = self.cfg;
        let ns = cfg.ns;
        let factory: BackendFactory = Box::new(move || kind.build(&cfg, program));
        let queue = ServeQueue::from_factory(policy, ns, factory)?;
        queue.seed_stats(self.stats);
        Ok(queue)
    }

    /// Converts this session into a [`ReplicaPool`] of
    /// [`ServePolicy::replicas`] backends, each rebuilt from the
    /// session's `(program, backend kind)` recipe on its own replica
    /// thread. The recipe stays callable, so the pool can respawn a
    /// replica whose backend panicked (up to the
    /// [`RecoveryPolicy`](crate::pool::RecoveryPolicy) restart budget).
    /// The statistics accumulated so far carry over and keep growing as
    /// the pool serves.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QueueUnavailable`] for sessions made with
    /// [`Session::from_backend`] — a caller-constructed backend cannot
    /// be rebuilt on other threads; hand factories to
    /// [`ReplicaPool::from_factories`] instead. Construction failures
    /// of the rebuilt backends propagate as their own errors.
    pub fn into_pool(self, policy: ServePolicy) -> Result<ReplicaPool, BackendError> {
        let (program, kind) = self.recipe.ok_or_else(|| BackendError::QueueUnavailable {
            reason: "session was built from a caller-constructed backend; \
                     use ReplicaPool::from_factories"
                .into(),
        })?;
        let cfg = self.cfg;
        let ns = cfg.ns;
        let recipes = (0..policy.replicas.max(1))
            .map(|_| {
                let cfg = cfg.clone();
                let program = program.clone();
                let recipe: ReplicaFactory = Arc::new(move || kind.build(&cfg, program.clone()));
                recipe
            })
            .collect();
        let pool = ReplicaPool::from_recipes(policy, ns, recipes)?;
        pool.seed_stats(self.stats);
        Ok(pool)
    }

    /// Runs one batch and folds its measurements into the session stats.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`BackendError`]s; a failed batch
    /// contributes nothing to the statistics.
    pub fn run(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        let t0 = Instant::now();
        let result = self.backend.run_batch(batch)?;
        self.stats.absorb(&result, t0.elapsed());
        if let Some(cache) = self.backend.cache_stats() {
            self.stats.note_cache(0, cache);
        }
        Ok(result)
    }

    /// Aggregate statistics over every successful batch so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The executing backend's name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The session's macro configuration.
    pub fn config(&self) -> &MacroConfig {
        &self.cfg
    }

    /// The backend's netlist, when it drives one (RTL backends) — for
    /// probing violations or enabling waveform tracing from tests.
    pub fn rtl(&self) -> Option<&AcceleratorRtl> {
        self.backend.rtl()
    }

    /// Mutable netlist access, when the backend drives one — for energy
    /// resets, event caps and tracing.
    pub fn rtl_mut(&mut self) -> Option<&mut AcceleratorRtl> {
        self.backend.rtl_mut()
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("backend", &self.backend.name())
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Aggregate measurements across every batch a [`Session`] has run —
/// and, when the session serves through a [`ServeQueue`], across every
/// dispatched micro-batch: queue-wait percentiles, coalesced micro-batch
/// sizes and the deepest backlog observed.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    tokens: u64,
    batches: u64,
    wall: Duration,
    energy: Joules,
    measured_energy: bool,
    /// Per-token latencies in seconds — bounded: a uniform reservoir
    /// once the cap is reached, so a long-lived session never grows
    /// without limit.
    latencies: SampleSet,
    /// Per-request queue waits in seconds, sampled like `latencies`.
    queue_waits: SampleSet,
    /// Requests resolved through a serving queue.
    queued_requests: u64,
    /// Micro-batches the queue's dispatcher ran.
    queued_batches: u64,
    /// Tokens that travelled through those micro-batches.
    queued_tokens: u64,
    /// Largest micro-batch (in tokens) the dispatcher coalesced.
    max_coalesced: u64,
    /// Deepest backlog (unresolved requests) observed at submit time.
    max_queue_depth: u64,
    /// Micro-batches dispatched per replica, indexed by replica.
    replica_dispatches: Vec<u64>,
    /// Backend service time accumulated per replica, indexed likewise.
    replica_busy: Vec<Duration>,
    /// How long the pool has been open — the utilisation denominator.
    pool_uptime: Duration,
    /// Riders re-queued after a transient failure or replica panic.
    retries: u64,
    /// The pool's degradation snapshot at stats time.
    pool_health: PoolHealth,
    /// Per-stage serving profiles, populated only by a
    /// [`PipelineGraph`](crate::pipeline::PipelineGraph).
    stage_profiles: Vec<StageProfile>,
    /// Requests that travelled the whole pipeline successfully.
    images: u64,
    /// End-to-end pipeline latencies in seconds, sampled like `latencies`.
    image_latencies: SampleSet,
    /// How long the pipeline has been open — the occupancy denominator.
    pipeline_uptime: Duration,
    /// Result-cache counters carried over from stores that no longer
    /// exist (a session converted into a pool/queue) — history only,
    /// residency gauges zeroed.
    cache_baseline: CacheStats,
    /// Latest cumulative cache snapshot per live source (replica index
    /// for pools/queues/sessions, stage index for pipelines). Each slot
    /// is one distinct store's view; the aggregate sums them.
    cache_slots: Vec<CacheStats>,
}

/// One pipeline stage's serving profile inside [`SessionStats`]: how many
/// items it completed, how long it was busy doing real work (host apply
/// time, or backend service time for macro stages), how long items
/// resided in the stage (queue wait + service — the per-stage latency the
/// end-to-end number decomposes into), and its recovery/backpressure
/// counters.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    name: String,
    items: u64,
    busy: Duration,
    retries: u64,
    restarts: u64,
    queue_high_water: u64,
    /// Per-item residence times (seconds) in this stage.
    residence: SampleSet,
    /// The stage pool's aggregate result-cache snapshot, when its
    /// replicas run a cached tier.
    cache: CacheStats,
}

impl StageProfile {
    /// The stage's name (layer name for lowered networks).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Items this stage completed (forwarded or resolved).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Time the stage spent doing real work: host apply time, or the
    /// backend service time its pool reported.
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// Riders the stage's replica pool re-queued for retry (0 for host
    /// stages — host closures are not retried).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful replica respawns inside this stage's pool.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Deepest backlog the stage's inter-stage queue reached — how hard
    /// backpressure squeezed at this point of the graph.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water
    }

    /// Median per-item residence (queue wait + service) in this stage.
    pub fn p50_residence(&self) -> Option<Duration> {
        self.residence.percentile(50.0).map(Duration::from_secs_f64)
    }

    /// 99th-percentile per-item residence in this stage.
    pub fn p99_residence(&self) -> Option<Duration> {
        self.residence.percentile(99.0).map(Duration::from_secs_f64)
    }

    /// The stage's aggregate result-cache snapshot — all zeros unless
    /// its replicas run a [`CachedBackend`](crate::cache::CachedBackend)
    /// tier.
    pub fn cache(&self) -> CacheStats {
        self.cache
    }

    /// The share of `uptime` this stage spent busy — the per-stage
    /// occupancy of the acceptance criteria. 0 when the uptime is below
    /// clock resolution.
    pub fn occupancy(&self, uptime: Duration) -> f64 {
        let denom = uptime.as_secs_f64();
        if denom <= 0.0 {
            return 0.0;
        }
        self.busy.as_secs_f64() / denom
    }
}

impl SessionStats {
    fn absorb(&mut self, result: &BatchResult, wall: Duration) {
        self.tokens += result.tokens.len() as u64;
        self.batches += 1;
        self.wall += wall;
        if let Some(e) = result.energy {
            self.energy += e;
            self.measured_energy = true;
        } else {
            let mut any = false;
            for obs in &result.tokens {
                if let Some(e) = obs.energy {
                    self.energy += e;
                    any = true;
                }
            }
            self.measured_energy |= any;
        }
        for latency in result.tokens.iter().filter_map(|t| t.latency) {
            self.latencies.push(latency.value());
        }
    }

    /// Folds one *successfully served* micro-batch into the statistics:
    /// the batch itself (tokens, wall time, energy, token latencies)
    /// plus the queue-side view.
    pub(crate) fn absorb_queued(
        &mut self,
        result: &BatchResult,
        service: Duration,
        waits: &[Duration],
    ) {
        self.absorb(result, service);
        self.absorb_queue_side(result.tokens.len(), waits);
    }

    /// Folds one dispatched micro-batch's queue-side view — one wait
    /// sample per coalesced request and the micro-batch size — into the
    /// statistics. Called for failed micro-batches too: their requests
    /// waited and resolved like any other, so leaving them out would
    /// skew the wait percentiles optimistic under error load (only the
    /// *served*-token measurements of [`SessionStats::absorb`] are
    /// success-only).
    pub(crate) fn absorb_queue_side(&mut self, tokens: usize, waits: &[Duration]) {
        self.queued_requests += waits.len() as u64;
        self.queued_batches += 1;
        self.queued_tokens += tokens as u64;
        self.max_coalesced = self.max_coalesced.max(tokens as u64);
        for wait in waits {
            self.queue_waits.push(wait.as_secs_f64());
        }
    }

    /// Records the backlog depth seen by one submission.
    pub(crate) fn record_queue_depth(&mut self, depth: u64) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    /// Records one micro-batch dispatch on a replica: bumps its
    /// dispatch count and accumulates the backend service time it was
    /// busy for.
    pub(crate) fn record_replica_dispatch(&mut self, replica: usize, busy: Duration) {
        if self.replica_dispatches.len() <= replica {
            self.replica_dispatches.resize(replica + 1, 0);
            self.replica_busy.resize(replica + 1, Duration::ZERO);
        }
        self.replica_dispatches[replica] += 1;
        self.replica_busy[replica] += busy;
    }

    /// Notes the pool shape at snapshot time: replicas that have not
    /// dispatched yet still appear (with zero counts), and the uptime
    /// denominator only ever grows.
    pub(crate) fn note_pool(&mut self, replicas: usize, uptime: Duration) {
        if self.replica_dispatches.len() < replicas {
            self.replica_dispatches.resize(replicas, 0);
            self.replica_busy.resize(replicas, Duration::ZERO);
        }
        self.pool_uptime = self.pool_uptime.max(uptime);
    }

    /// Counts riders re-queued for retry after a transient failure or a
    /// replica panic.
    pub(crate) fn record_retries(&mut self, retried: u64) {
        self.retries += retried;
    }

    /// Notes the pool's degradation snapshot at stats time.
    pub(crate) fn note_pool_health(&mut self, health: PoolHealth) {
        self.pool_health = health;
    }

    /// Grows the stage-profile table to cover `stage`, leaving untouched
    /// entries as they are.
    fn ensure_stage(&mut self, stage: usize) -> &mut StageProfile {
        if self.stage_profiles.len() <= stage {
            self.stage_profiles
                .resize_with(stage + 1, StageProfile::default);
        }
        &mut self.stage_profiles[stage]
    }

    /// Registers pipeline stage `stage` under `name` (idempotent).
    pub(crate) fn init_stage(&mut self, stage: usize, name: &str) {
        let profile = self.ensure_stage(stage);
        if profile.name.is_empty() {
            profile.name = name.to_string();
        }
    }

    /// Records one item completing pipeline stage `stage`: `busy` is the
    /// real work time, `residence` the item's whole stay in the stage.
    pub(crate) fn record_stage_item(&mut self, stage: usize, busy: Duration, residence: Duration) {
        let profile = self.ensure_stage(stage);
        profile.items += 1;
        profile.busy += busy;
        profile.residence.push(residence.as_secs_f64());
    }

    /// Folds a stage pool's recovery counters into its profile (snapshot
    /// semantics: the pool reports totals, not deltas).
    pub(crate) fn set_stage_recovery(&mut self, stage: usize, retries: u64, restarts: u64) {
        let profile = self.ensure_stage(stage);
        profile.retries = profile.retries.max(retries);
        profile.restarts = profile.restarts.max(restarts);
    }

    /// Folds a stage queue's deepest observed backlog into its profile.
    pub(crate) fn set_stage_queue_high_water(&mut self, stage: usize, high_water: u64) {
        let profile = self.ensure_stage(stage);
        profile.queue_high_water = profile.queue_high_water.max(high_water);
    }

    /// Folds a stage pool's aggregate cache snapshot into its profile
    /// (snapshot semantics, like the recovery counters).
    pub(crate) fn set_stage_cache(&mut self, stage: usize, snapshot: CacheStats) {
        self.ensure_stage(stage).cache.absorb_snapshot(snapshot);
    }

    /// Folds one source's cumulative cache snapshot into the statistics.
    /// A source is one distinct store's owner — the replica index for
    /// pools and queues (and a plain session, which is source 0), the
    /// stage index for pipelines. Successive snapshots of one source are
    /// max-merged so repeated harvests never double-count; distinct
    /// sources sum in [`SessionStats::cache`].
    pub(crate) fn note_cache(&mut self, source: usize, snapshot: CacheStats) {
        if self.cache_slots.len() <= source {
            self.cache_slots.resize(source + 1, CacheStats::default());
        }
        self.cache_slots[source].absorb_snapshot(snapshot);
    }

    /// Retires the live cache slots into the baseline — called when the
    /// stores that produced them are going away (a session converting
    /// into a pool or queue rebuilds its backend from the recipe): the
    /// event counters are history worth carrying, but the residency
    /// gauges die with the stores.
    pub(crate) fn rebase_cache(&mut self) {
        let folded = self
            .cache_slots
            .drain(..)
            .fold(CacheStats::default(), |acc, s| acc.merged(s));
        self.cache_baseline = self.cache_baseline.merged(CacheStats {
            resident_entries: 0,
            resident_bytes: 0,
            ..folded
        });
    }

    /// Notes the pipeline shape at snapshot time; the uptime denominator
    /// only ever grows.
    pub(crate) fn note_pipeline(&mut self, uptime: Duration) {
        self.pipeline_uptime = self.pipeline_uptime.max(uptime);
    }

    /// Records one request completing the whole pipeline.
    pub(crate) fn record_pipeline_reply(&mut self, latency: Duration) {
        self.images += 1;
        self.image_latencies.push(latency.as_secs_f64());
    }

    /// Tokens run so far.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Batches run so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Host wall-clock time spent inside [`Session::run`].
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Host-side throughput: tokens per wall-clock second. `None` when
    /// the accumulated wall time is below the host clock's resolution —
    /// "too fast to measure" is not the same observation as "no
    /// throughput", and conflating them as `0.0` poisoned downstream
    /// rate math.
    pub fn tokens_per_sec(&self) -> Option<f64> {
        let secs = self.wall.as_secs_f64();
        (secs > 0.0).then(|| self.tokens as f64 / secs)
    }

    /// Total measured/modelled energy, when any backend reported it.
    pub fn total_energy(&self) -> Option<Joules> {
        self.measured_energy.then_some(self.energy)
    }

    /// Median per-token latency, when measured.
    pub fn p50_token_latency(&self) -> Option<Seconds> {
        self.percentile(50.0)
    }

    /// 99th-percentile per-token latency, when measured.
    pub fn p99_token_latency(&self) -> Option<Seconds> {
        self.percentile(99.0)
    }

    /// Arbitrary latency percentile (nearest-rank), when measured.
    pub fn percentile(&self, p: f64) -> Option<Seconds> {
        self.latencies.percentile(p).map(Seconds)
    }

    /// Requests resolved through a serving queue so far.
    pub fn queued_requests(&self) -> u64 {
        self.queued_requests
    }

    /// Micro-batches a serving queue's dispatcher has run so far.
    pub fn queued_batches(&self) -> u64 {
        self.queued_batches
    }

    /// Mean coalesced micro-batch size in tokens (0 when nothing has
    /// been served through a queue).
    pub fn mean_coalesced_batch(&self) -> f64 {
        if self.queued_batches > 0 {
            self.queued_tokens as f64 / self.queued_batches as f64
        } else {
            0.0
        }
    }

    /// Largest micro-batch (in tokens) the dispatcher coalesced.
    pub fn max_coalesced_batch(&self) -> u64 {
        self.max_coalesced
    }

    /// Deepest backlog (unresolved requests) observed at submit time.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth
    }

    /// Median per-request queue wait, once a queue has served requests.
    pub fn p50_queue_wait(&self) -> Option<Duration> {
        self.queue_wait_percentile(50.0)
    }

    /// 99th-percentile per-request queue wait.
    pub fn p99_queue_wait(&self) -> Option<Duration> {
        self.queue_wait_percentile(99.0)
    }

    /// Arbitrary queue-wait percentile (nearest-rank), host wall time.
    pub fn queue_wait_percentile(&self, p: f64) -> Option<Duration> {
        self.queue_waits.percentile(p).map(Duration::from_secs_f64)
    }

    /// Micro-batches dispatched per replica, indexed by replica. Empty
    /// unless the stats came from a replica pool (a plain serving queue
    /// is a one-replica pool, so it reports one entry).
    pub fn replica_dispatches(&self) -> &[u64] {
        &self.replica_dispatches
    }

    /// Backend service time accumulated per replica, indexed like
    /// [`replica_dispatches`](SessionStats::replica_dispatches).
    pub fn replica_busy(&self) -> &[Duration] {
        &self.replica_busy
    }

    /// How long the pool behind these stats has been open.
    pub fn pool_uptime(&self) -> Duration {
        self.pool_uptime
    }

    /// Riders re-queued for retry after a transient failure or replica
    /// panic. A request that eventually succeeds still counts its
    /// tokens exactly once — retries measure recovery work, not served
    /// traffic.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The pool's degradation snapshot when these stats were taken:
    /// live replicas, quarantined replicas, successful respawns.
    /// Default (all zeros) when the stats did not come from a pool.
    pub fn pool_health(&self) -> PoolHealth {
        self.pool_health
    }

    /// The aggregate result-cache view: counters carried over from
    /// retired stores plus the live per-source snapshots (each source —
    /// a replica, or a pipeline stage — owns a distinct store, so they
    /// sum). All zeros unless a
    /// [`CachedBackend`](crate::cache::CachedBackend) tier is deployed
    /// somewhere behind these stats.
    pub fn cache(&self) -> CacheStats {
        self.cache_slots
            .iter()
            .fold(self.cache_baseline, |acc, s| acc.merged(*s))
    }

    /// Cache lookups answered from a result store.
    pub fn cache_hits(&self) -> u64 {
        self.cache().hits
    }

    /// Cache lookups that fell through to an inner backend.
    pub fn cache_misses(&self) -> u64 {
        self.cache().misses
    }

    /// Hits over lookups, `None` before the first lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache().hit_rate()
    }

    /// Tokens elided by intra-batch deduplication.
    pub fn cache_dedup(&self) -> u64 {
        self.cache().dedup
    }

    /// Entries evicted to keep the configured cache bounds.
    pub fn cache_evictions(&self) -> u64 {
        self.cache().evictions
    }

    /// Entries currently resident across every live store.
    pub fn cache_resident_entries(&self) -> usize {
        self.cache().resident_entries
    }

    /// Bytes currently resident across every live store.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache().resident_bytes
    }

    /// Per-stage serving profiles, in stage order. Empty unless the
    /// stats came from a [`PipelineGraph`](crate::pipeline::PipelineGraph).
    pub fn stage_profiles(&self) -> &[StageProfile] {
        &self.stage_profiles
    }

    /// Requests that travelled the whole pipeline successfully.
    pub fn images(&self) -> u64 {
        self.images
    }

    /// How long the pipeline behind these stats has been open.
    pub fn pipeline_uptime(&self) -> Duration {
        self.pipeline_uptime
    }

    /// End-to-end pipeline throughput: completed requests per second of
    /// pipeline uptime. `None` when the uptime is below clock
    /// resolution (same discipline as
    /// [`tokens_per_sec`](SessionStats::tokens_per_sec)).
    pub fn images_per_sec(&self) -> Option<f64> {
        let secs = self.pipeline_uptime.as_secs_f64();
        (secs > 0.0 && self.images > 0).then(|| self.images as f64 / secs)
    }

    /// Median end-to-end pipeline latency, once the pipeline has served.
    pub fn p50_image_latency(&self) -> Option<Duration> {
        self.image_latencies
            .percentile(50.0)
            .map(Duration::from_secs_f64)
    }

    /// 99th-percentile end-to-end pipeline latency.
    pub fn p99_image_latency(&self) -> Option<Duration> {
        self.image_latencies
            .percentile(99.0)
            .map(Duration::from_secs_f64)
    }

    /// Per-stage occupancy against the pipeline uptime, in stage order.
    /// Empty when the uptime is below clock resolution.
    pub fn stage_occupancy(&self) -> Vec<f64> {
        if self.pipeline_uptime.as_secs_f64() <= 0.0 {
            return Vec::new();
        }
        self.stage_profiles
            .iter()
            .map(|p| p.occupancy(self.pipeline_uptime))
            .collect()
    }

    /// Per-replica utilisation: the share of the pool's uptime each
    /// replica spent inside its backend. Empty when the uptime is below
    /// clock resolution (same discipline as
    /// [`tokens_per_sec`](SessionStats::tokens_per_sec)).
    pub fn replica_utilisation(&self) -> Vec<f64> {
        let uptime = self.pool_uptime.as_secs_f64();
        if uptime <= 0.0 {
            return Vec::new();
        }
        self.replica_busy
            .iter()
            .map(|busy| busy.as_secs_f64() / uptime)
            .collect()
    }
}

/// A bounded measurement sample: exact below [`SampleSet::CAP`] values,
/// a uniform reservoir (Algorithm R on a deterministic splitmix64
/// stream) beyond it — so percentiles of an arbitrarily long-lived
/// session or serving queue stay statistically sound while memory and
/// per-sample cost stay O(CAP). Pushing is O(1); sorting happens at
/// query time, keeping the dispatcher's absorb path cheap.
#[derive(Debug, Clone, Default)]
struct SampleSet {
    samples: Vec<f64>,
    seen: u64,
}

impl SampleSet {
    /// 64Ki samples ≈ 512 KiB — enough for a stable p99 estimate.
    const CAP: usize = 1 << 16;

    fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < SampleSet::CAP {
            self.samples.push(value);
        } else {
            // Keep each newcomer with probability CAP/seen, evicting a
            // uniform victim — the classic reservoir step, derandomised
            // with a hash of the arrival index so replays are stable.
            let slot = splitmix64(self.seen) % self.seen;
            if (slot as usize) < SampleSet::CAP {
                self.samples[slot as usize] = value;
            }
        }
    }

    /// Nearest-rank percentile: the smallest retained value with at
    /// least `p` percent of the sample at or below it. `None` on an
    /// empty sample; `p` outside `[0, 100]` clamps to the extremes.
    fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }
}

/// SplitMix64: a well-mixed 64-bit hash, here turning the monotone
/// arrival index into the reservoir's deterministic random stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tokens in {} batches", self.tokens, self.batches)?;
        match self.tokens_per_sec() {
            Some(rate) => write!(f, ", {rate:.0} tokens/s")?,
            None => write!(f, ", rate unmeasured")?,
        }
        if let (Some(p50), Some(p99)) = (self.p50_token_latency(), self.p99_token_latency()) {
            write!(f, ", token latency p50 {p50} / p99 {p99}")?;
        }
        if let Some(e) = self.total_energy() {
            write!(f, ", {e} total")?;
        }
        if let (Some(p50), Some(p99)) = (self.p50_queue_wait(), self.p99_queue_wait()) {
            write!(
                f,
                ", queue wait p50 {:.1}us / p99 {:.1}us, {:.1} tokens/micro-batch (max depth {})",
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                self.mean_coalesced_batch(),
                self.max_queue_depth,
            )?;
        }
        if !self.stage_profiles.is_empty() {
            write!(f, ", pipeline: {} images", self.images)?;
            if let Some(rate) = self.images_per_sec() {
                write!(f, " ({rate:.0} images/s)")?;
            }
            if let (Some(p50), Some(p99)) = (self.p50_image_latency(), self.p99_image_latency()) {
                write!(
                    f,
                    ", e2e p50 {:.1}us / p99 {:.1}us",
                    p50.as_secs_f64() * 1e6,
                    p99.as_secs_f64() * 1e6,
                )?;
            }
            for profile in &self.stage_profiles {
                write!(f, ", [{}] {} items", profile.name, profile.items)?;
            }
        }
        if self.retries > 0 || self.pool_health.quarantined > 0 || self.pool_health.restarts > 0 {
            write!(
                f,
                ", recovery: {} retries, {} respawns, {}/{} replicas healthy",
                self.retries,
                self.pool_health.restarts,
                self.pool_health.healthy,
                self.pool_health.healthy + self.pool_health.quarantined,
            )?;
        }
        let cache = self.cache();
        if cache.hits + cache.misses + cache.dedup > 0 {
            write!(
                f,
                ", cache: {} hits / {} misses ({:.0}% hit rate), {} deduped, {} evicted, {} resident ({} B)",
                cache.hits,
                cache.misses,
                cache.hit_rate().unwrap_or(0.0) * 100.0,
                cache.dedup,
                cache.evictions,
                cache.resident_entries,
                cache.resident_bytes,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Fidelity;

    #[test]
    fn builder_requires_a_program() {
        assert_eq!(
            Session::builder(MacroConfig::new(1, 1))
                .build()
                .unwrap_err(),
            BackendError::MissingProgram
        );
    }

    #[test]
    fn builder_rejects_mismatched_programs() {
        let err = Session::builder(MacroConfig::new(2, 2))
            .program(MacroProgram::random(2, 3, 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, BackendError::ProgramMismatch { .. }), "{err}");
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 5);
        let mut s = Session::builder(cfg)
            .program(program)
            .backend(BackendKind::Analytic)
            .build()
            .unwrap();
        s.run(&TokenBatch::random(2, 3, 1)).unwrap();
        s.run(&TokenBatch::random(2, 5, 2)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.tokens(), 8);
        assert_eq!(stats.batches(), 2);
        assert!(stats.total_energy().unwrap().value() > 0.0);
        let p50 = stats.p50_token_latency().unwrap();
        let p99 = stats.p99_token_latency().unwrap();
        assert!(p50 <= p99 && p50.value() > 0.0);
        let text = stats.to_string();
        assert!(text.contains("8 tokens") && text.contains("p50"), "{text}");
    }

    #[test]
    fn failed_batches_do_not_pollute_stats() {
        let cfg = MacroConfig::new(1, 2);
        let mut s = Session::builder(cfg)
            .program(MacroProgram::random(1, 2, 5))
            .build()
            .unwrap();
        let wrong = TokenBatch::random(3, 2, 1);
        assert!(s.run(&wrong).is_err());
        assert_eq!(s.stats().tokens(), 0);
        assert_eq!(s.stats().batches(), 0);
        assert!(s.stats().p50_token_latency().is_none());
        assert!(s.stats().total_energy().is_none());
        assert!(s.rtl().is_none(), "functional backend has no netlist");
    }

    #[test]
    fn sharded_sessions_are_first_class() {
        use crate::backend::ShardKind;
        let cfg = MacroConfig::new(6, 2);
        let program = MacroProgram::random(6, 2, 13);
        let mut s = Session::builder(cfg)
            .program(program.clone())
            .backend(BackendKind::Sharded {
                shards: 3,
                inner: ShardKind::Analytic,
            })
            .build()
            .unwrap();
        let batch = TokenBatch::random(2, 4, 6);
        let result = s.run(&batch).unwrap();
        assert_eq!(s.backend_name(), "sharded");
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(result.tokens[t].outputs, program.reference_output(token));
        }
        // Shard measurements flow into the session stats unchanged.
        let stats = s.stats();
        assert_eq!(stats.tokens(), 4);
        assert!(stats.total_energy().unwrap().value() > 0.0);
        assert!(stats.p50_token_latency().is_some());
        assert!(s.rtl().is_none(), "netlists live on the shard workers");
    }

    #[test]
    fn builder_serves_directly_without_a_local_backend() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 3);
        let queue = Session::builder(cfg)
            .program(program.clone())
            .into_serving(QueuePolicy::default())
            .unwrap();
        let batch = TokenBatch::random(2, 2, 1);
        let reply = queue.submit(batch.clone()).unwrap().wait().unwrap();
        assert_eq!(
            reply.result.tokens[0].outputs,
            program.reference_output(&batch.tokens()[0])
        );
        assert_eq!(queue.shutdown().tokens(), 2);
        // The direct path fails as fast as build() on bad input.
        assert_eq!(
            Session::builder(MacroConfig::new(1, 1))
                .into_serving(QueuePolicy::default())
                .unwrap_err(),
            BackendError::MissingProgram
        );
        let mismatch = Session::builder(MacroConfig::new(2, 2))
            .program(MacroProgram::random(2, 3, 0))
            .into_serving(QueuePolicy::default())
            .unwrap_err();
        assert!(matches!(mismatch, BackendError::ProgramMismatch { .. }));
    }

    #[test]
    fn long_lived_sample_sets_stay_bounded_and_representative() {
        let mut set = SampleSet::default();
        let total = SampleSet::CAP * 4;
        for i in 0..total {
            set.push(i as f64);
        }
        // Bounded: the reservoir never exceeds its cap however long the
        // session lives…
        assert_eq!(set.samples.len(), SampleSet::CAP);
        assert_eq!(set.seen, total as u64);
        // …and stays a uniform subset: the retained median tracks the
        // true median of the full 0..4·CAP stream.
        let p50 = set.percentile(50.0).unwrap();
        let true_median = total as f64 / 2.0;
        assert!(
            (p50 - true_median).abs() < total as f64 * 0.05,
            "reservoir p50 {p50} drifted from true median {true_median}"
        );
        // Determinism: the same pushes reproduce the same reservoir.
        let mut replay = SampleSet::default();
        for i in 0..total {
            replay.push(i as f64);
        }
        assert_eq!(set.samples, replay.samples);
    }

    /// Fabricates a `BatchResult` carrying exactly these token latencies
    /// (seconds) — the percentile math's only input.
    fn result_with_latencies(latencies: &[f64]) -> BatchResult {
        BatchResult {
            backend: "test",
            tokens: latencies
                .iter()
                .map(|&l| crate::batch::TokenObservation {
                    outputs: vec![0],
                    latency: Some(Seconds(l)),
                    energy: None,
                })
                .collect(),
            makespan: None,
            energy: None,
        }
    }

    #[test]
    fn percentiles_of_nothing_are_none() {
        let stats = SessionStats::default();
        assert_eq!(stats.p50_token_latency(), None);
        assert_eq!(stats.p99_token_latency(), None);
        assert_eq!(stats.percentile(0.0), None);
        assert_eq!(stats.percentile(100.0), None);
        assert_eq!(stats.p50_queue_wait(), None);
        assert_eq!(stats.queue_wait_percentile(99.0), None);
        // Tokens without latency observations leave percentiles None.
        let mut unmeasured = SessionStats::default();
        let mut result = result_with_latencies(&[1.0, 2.0]);
        for t in &mut result.tokens {
            t.latency = None;
        }
        unmeasured.absorb(&result, Duration::from_millis(1));
        assert_eq!(unmeasured.tokens(), 2);
        assert_eq!(unmeasured.p50_token_latency(), None);
    }

    #[test]
    fn a_single_sample_is_every_percentile() {
        let mut stats = SessionStats::default();
        stats.absorb(&result_with_latencies(&[4.25]), Duration::from_millis(1));
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(stats.percentile(p), Some(Seconds(4.25)), "p{p}");
        }
        assert_eq!(stats.p50_token_latency(), stats.p99_token_latency());
    }

    #[test]
    fn tied_samples_keep_nearest_rank_exact() {
        let mut stats = SessionStats::default();
        stats.absorb(
            &result_with_latencies(&[1.0, 1.0, 1.0, 2.0]),
            Duration::from_millis(1),
        );
        // nearest rank over [1, 1, 1, 2]: p50 -> rank 2, p75 -> rank 3,
        // p76..p100 -> rank 4.
        assert_eq!(stats.percentile(50.0), Some(Seconds(1.0)));
        assert_eq!(stats.percentile(75.0), Some(Seconds(1.0)));
        assert_eq!(stats.percentile(76.0), Some(Seconds(2.0)));
        assert_eq!(stats.p99_token_latency(), Some(Seconds(2.0)));
    }

    #[test]
    fn unsorted_arrival_order_does_not_skew_percentiles() {
        // Three batches, descending and interleaved latencies: the
        // sorted invariant must hold across absorbs, not per batch.
        let mut stats = SessionStats::default();
        stats.absorb(&result_with_latencies(&[9.0]), Duration::from_millis(1));
        stats.absorb(
            &result_with_latencies(&[1.0, 7.0]),
            Duration::from_millis(1),
        );
        stats.absorb(
            &result_with_latencies(&[5.0, 3.0]),
            Duration::from_millis(1),
        );
        // Sorted view: [1, 3, 5, 7, 9].
        assert_eq!(stats.percentile(50.0), Some(Seconds(5.0)));
        assert_eq!(stats.percentile(20.0), Some(Seconds(1.0)));
        assert_eq!(stats.percentile(21.0), Some(Seconds(3.0)));
        assert_eq!(stats.p99_token_latency(), Some(Seconds(9.0)));
        // Out-of-range percentiles clamp to the extremes.
        assert_eq!(stats.percentile(-5.0), Some(Seconds(1.0)));
        assert_eq!(stats.percentile(250.0), Some(Seconds(9.0)));
    }

    #[test]
    fn queued_micro_batches_feed_queue_stats() {
        let mut stats = SessionStats::default();
        stats.absorb_queued(
            &result_with_latencies(&[1.0, 2.0, 3.0]),
            Duration::from_millis(2),
            &[Duration::from_micros(10), Duration::from_micros(30)],
        );
        stats.absorb_queued(
            &result_with_latencies(&[4.0]),
            Duration::from_millis(1),
            &[Duration::from_micros(20)],
        );
        stats.record_queue_depth(2);
        stats.record_queue_depth(5);
        stats.record_queue_depth(3);
        assert_eq!(stats.tokens(), 4);
        assert_eq!(stats.queued_requests(), 3);
        assert_eq!(stats.queued_batches(), 2);
        assert_eq!(stats.max_coalesced_batch(), 3);
        assert_eq!(stats.max_queue_depth(), 5);
        assert!((stats.mean_coalesced_batch() - 2.0).abs() < 1e-12);
        // Queue waits sort across absorbs: [10, 20, 30] µs.
        assert_eq!(stats.p50_queue_wait(), Some(Duration::from_micros(20)));
        assert_eq!(stats.p99_queue_wait(), Some(Duration::from_micros(30)));
        let text = stats.to_string();
        assert!(text.contains("queue wait p50"), "{text}");
        assert!(text.contains("tokens/micro-batch"), "{text}");
        // A *failed* micro-batch still counts on the queue side (its
        // requests waited and resolved), but adds no served tokens.
        stats.absorb_queue_side(5, &[Duration::from_micros(40), Duration::from_micros(50)]);
        assert_eq!(stats.queued_requests(), 5);
        assert_eq!(stats.queued_batches(), 3);
        assert_eq!(stats.max_coalesced_batch(), 5);
        assert_eq!(stats.tokens(), 4, "served tokens stay success-only");
        assert!((stats.mean_coalesced_batch() - 3.0).abs() < 1e-12);
        assert_eq!(stats.p99_queue_wait(), Some(Duration::from_micros(50)));
    }

    #[test]
    fn sub_resolution_wall_time_reports_no_rate() {
        // "Too fast to measure" must be None, not a fake 0 tokens/s.
        let mut stats = SessionStats::default();
        stats.absorb(&result_with_latencies(&[1.0]), Duration::ZERO);
        assert_eq!(stats.tokens(), 1);
        assert_eq!(stats.tokens_per_sec(), None);
        let text = stats.to_string();
        assert!(text.contains("rate unmeasured"), "{text}");
        stats.absorb(&result_with_latencies(&[1.0]), Duration::from_millis(10));
        let rate = stats.tokens_per_sec();
        assert!(rate.is_some_and(|r| r > 0.0), "{rate:?}");
        assert!(stats.to_string().contains("tokens/s"));
    }

    #[test]
    fn replica_accounting_accumulates_and_utilises() {
        let mut stats = SessionStats::default();
        stats.record_replica_dispatch(1, Duration::from_millis(30));
        stats.record_replica_dispatch(0, Duration::from_millis(10));
        stats.record_replica_dispatch(1, Duration::from_millis(20));
        stats.note_pool(4, Duration::from_millis(100));
        assert_eq!(stats.replica_dispatches(), &[1, 2, 0, 0]);
        assert_eq!(stats.replica_busy()[1], Duration::from_millis(50));
        let util = stats.replica_utilisation();
        assert_eq!(util.len(), 4);
        assert!((util[0] - 0.1).abs() < 1e-9, "{util:?}");
        assert!((util[1] - 0.5).abs() < 1e-9, "{util:?}");
        assert_eq!(util[3], 0.0);
        // The uptime denominator only ever grows across snapshots.
        stats.note_pool(4, Duration::from_millis(50));
        assert_eq!(stats.pool_uptime(), Duration::from_millis(100));
        // Stats that never saw a pool make no utilisation claims.
        assert!(SessionStats::default().replica_utilisation().is_empty());
    }

    #[test]
    fn stage_profiles_accumulate_and_report_occupancy() {
        let mut stats = SessionStats::default();
        stats.init_stage(0, "conv");
        stats.init_stage(1, "relu");
        stats.record_stage_item(0, Duration::from_millis(40), Duration::from_millis(50));
        stats.record_stage_item(0, Duration::from_millis(10), Duration::from_millis(90));
        stats.record_stage_item(1, Duration::from_millis(5), Duration::from_millis(5));
        stats.set_stage_recovery(0, 3, 1);
        stats.set_stage_queue_high_water(1, 7);
        stats.note_pipeline(Duration::from_millis(100));
        stats.record_pipeline_reply(Duration::from_millis(95));
        let profiles = stats.stage_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].name(), "conv");
        assert_eq!(profiles[0].items(), 2);
        assert_eq!(profiles[0].busy(), Duration::from_millis(50));
        assert_eq!(profiles[0].retries(), 3);
        assert_eq!(profiles[0].restarts(), 1);
        assert_eq!(profiles[1].queue_high_water(), 7);
        assert_eq!(profiles[0].p99_residence(), Some(Duration::from_millis(90)));
        let occupancy = stats.stage_occupancy();
        assert!((occupancy[0] - 0.5).abs() < 1e-9, "{occupancy:?}");
        assert!((occupancy[1] - 0.05).abs() < 1e-9, "{occupancy:?}");
        assert_eq!(stats.images(), 1);
        assert!(stats.images_per_sec().is_some_and(|r| r > 0.0));
        assert_eq!(stats.p50_image_latency(), Some(Duration::from_millis(95)));
        // Snapshot semantics: recovery counters never regress, the
        // uptime denominator only grows.
        stats.set_stage_recovery(0, 2, 0);
        assert_eq!(stats.stage_profiles()[0].retries(), 3);
        stats.note_pipeline(Duration::from_millis(60));
        assert_eq!(stats.pipeline_uptime(), Duration::from_millis(100));
        let text = stats.to_string();
        assert!(text.contains("pipeline: 1 images"), "{text}");
        assert!(text.contains("[conv] 2 items"), "{text}");
        // Stats that never saw a pipeline stay silent about one.
        assert!(SessionStats::default().stage_profiles().is_empty());
        assert_eq!(SessionStats::default().images_per_sec(), None);
    }

    #[test]
    fn rtl_sessions_expose_the_netlist() {
        let cfg = MacroConfig::new(1, 1);
        let mut s = Session::builder(cfg)
            .program(MacroProgram::random(1, 1, 2))
            .backend(BackendKind::Rtl {
                fidelity: Fidelity::Sequential,
            })
            .build()
            .unwrap();
        s.run(&TokenBatch::random(1, 2, 3)).unwrap();
        assert!(s.rtl().unwrap().simulator().violations().is_empty());
        assert_eq!(s.backend_name(), "rtl-sequential");
        let rate = s.stats().tokens_per_sec();
        assert!(rate.is_some_and(|r| r > 0.0), "{rate:?}");
    }

    #[test]
    fn cached_sessions_report_hits_and_dedup_in_stats() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 17);
        let mut s = Session::builder(cfg)
            .program(program)
            .backend(BackendKind::Cached {
                cache: crate::cache::CacheConfig::default(),
                inner: crate::backend::CachedKind::Functional { workers: 1 },
            })
            .build()
            .unwrap();
        assert_eq!(s.backend_name(), "cached");
        let repeated = TokenBatch::random(2, 1, 9).tokens()[0].clone();
        let batch = TokenBatch::new(vec![repeated.clone(), repeated]).unwrap();
        s.run(&batch).unwrap();
        s.run(&batch).unwrap();
        let stats = s.stats();
        assert_eq!(stats.cache_misses(), 1, "one unique token computed once");
        assert_eq!(stats.cache_dedup(), 1, "in-batch duplicate elided");
        assert_eq!(stats.cache_hits(), 2, "second batch fully served");
        assert!(stats.cache_hit_rate().unwrap() > 0.5);
        assert!(stats.cache_resident_entries() == 1 && stats.cache_resident_bytes() > 0);
        let text = stats.to_string();
        assert!(text.contains("cache: 2 hits"), "{text}");
        // Uncached sessions stay silent about a cache.
        assert!(!SessionStats::default().to_string().contains("cache:"));
    }

    /// The PR-9 stats-gap satellite: percentile reservoirs *and* the
    /// cache counters survive `Session::into_pool` carry-over (only the
    /// queue-wait fields were covered before).
    #[test]
    fn reservoirs_and_cache_counters_survive_into_pool_carry_over() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 23);
        let mut s = Session::builder(cfg)
            .program(program.clone())
            .backend(BackendKind::Cached {
                cache: crate::cache::CacheConfig::default(),
                inner: crate::backend::CachedKind::Rtl {
                    fidelity: Fidelity::Sequential,
                },
            })
            .build()
            .unwrap();
        let batch = TokenBatch::random(2, 2, 31);
        s.run(&batch).unwrap(); // cold: measured latencies, 2 misses
        s.run(&batch).unwrap(); // warm: 2 hits
        let p50_before = s.stats().p50_token_latency().expect("RTL measured");
        let hits_before = s.stats().cache_hits();
        let misses_before = s.stats().cache_misses();
        assert!(hits_before > 0 && misses_before > 0);

        let pool = s.into_pool(crate::pool::ServePolicy::default()).unwrap();
        // Carried over before any pool traffic…
        let carried = pool.stats();
        assert_eq!(carried.p50_token_latency(), Some(p50_before));
        assert_eq!(carried.cache_hits(), hits_before);
        assert_eq!(carried.cache_misses(), misses_before);
        // …and still growing: the pool's replica builds a fresh (cold)
        // store from the same recipe, so the same batch misses again —
        // on top of the carried counters, never instead of them.
        pool.submit(batch.clone()).unwrap().wait().unwrap();
        pool.submit(batch).unwrap().wait().unwrap();
        let after = pool.shutdown();
        assert_eq!(after.cache_misses(), misses_before + 2);
        assert_eq!(after.cache_hits(), hits_before + 2);
        assert!(after.p50_token_latency().is_some());
    }

    /// As above for `Session::into_serving` (the one-replica queue).
    #[test]
    fn reservoirs_and_cache_counters_survive_into_serving_carry_over() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 29);
        let mut s = Session::builder(cfg)
            .program(program)
            .backend(BackendKind::Cached {
                cache: crate::cache::CacheConfig::default(),
                inner: crate::backend::CachedKind::Rtl {
                    fidelity: Fidelity::Sequential,
                },
            })
            .build()
            .unwrap();
        let batch = TokenBatch::random(2, 3, 37);
        s.run(&batch).unwrap();
        s.run(&batch).unwrap();
        let p50_before = s.stats().p50_token_latency().expect("RTL measured");
        let hits_before = s.stats().cache_hits();
        let misses_before = s.stats().cache_misses();

        let queue = s.into_serving(QueuePolicy::default()).unwrap();
        queue.submit(batch.clone()).unwrap().wait().unwrap();
        queue.submit(batch).unwrap().wait().unwrap();
        let after = queue.shutdown();
        assert_eq!(after.p50_token_latency(), Some(p50_before));
        assert_eq!(after.cache_misses(), misses_before + 3);
        assert_eq!(after.cache_hits(), hits_before + 3);
    }
}
