//! Batched inference sessions: one builder, one `run` call, aggregate
//! statistics — regardless of which backend executes.
//!
//! A [`Session`] is the front door of the execution API: it validates the
//! program against the configuration once, constructs the chosen backend
//! (functional, RTL, analytic, or a sharded fleet of those), and then
//! treats it purely through the [`MacroBackend`] contract — so
//! [`SessionStats`] (tokens/s, total energy, p50/p99 token latency)
//! accumulate identically whatever executes the batches, and swapping
//! [`BackendKind`]s never changes a single output bit.

use crate::analytic::AnalyticBackend;
use crate::backend::{validate_program, BackendKind, MacroBackend};
use crate::batch::{BatchResult, TokenBatch};
use crate::error::BackendError;
use crate::functional::FunctionalBackend;
use crate::rtl::RtlBackend;
use crate::sharded::ShardedBackend;
use core::fmt;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
use maddpipe_tech::units::{Joules, Seconds};
use std::time::{Duration, Instant};

/// Builder for a [`Session`]; see [`Session::builder`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    cfg: MacroConfig,
    program: Option<MacroProgram>,
    kind: BackendKind,
}

impl SessionBuilder {
    /// Sets the program to load into the macro (required).
    #[must_use]
    pub fn program(mut self, program: MacroProgram) -> SessionBuilder {
        self.program = Some(program);
        self
    }

    /// Picks the executing backend (defaults to single-threaded
    /// functional).
    #[must_use]
    pub fn backend(mut self, kind: BackendKind) -> SessionBuilder {
        self.kind = kind;
        self
    }

    /// Validates the program against the configuration and constructs the
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::MissingProgram`] when no program was set,
    /// and the constructor errors of the chosen backend
    /// ([`BackendError::ProgramMismatch`],
    /// [`BackendError::MalformedProgram`]).
    pub fn build(self) -> Result<Session, BackendError> {
        let program = self.program.ok_or(BackendError::MissingProgram)?;
        validate_program(&self.cfg, &program)?;
        let backend: Box<dyn MacroBackend> = match self.kind {
            BackendKind::Functional { workers } => {
                Box::new(FunctionalBackend::with_workers(program, workers))
            }
            BackendKind::Rtl { fidelity } => {
                Box::new(RtlBackend::new(&self.cfg, &program, fidelity)?)
            }
            BackendKind::Analytic => Box::new(AnalyticBackend::new(&self.cfg, program)?),
            BackendKind::Sharded { shards, inner } => {
                Box::new(ShardedBackend::uniform(&self.cfg, &program, shards, inner)?)
            }
        };
        Ok(Session {
            cfg: self.cfg,
            backend,
            stats: SessionStats::default(),
        })
    }
}

/// A long-lived inference session: owns one programmed backend, accepts
/// [`TokenBatch`]es, and accumulates [`SessionStats`] across batches.
///
/// ```
/// use maddpipe_runtime::prelude::*;
/// use maddpipe_core::prelude::*;
///
/// let cfg = MacroConfig::new(2, 2);
/// let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
/// let mut session = Session::builder(cfg)
///     .program(program.clone())
///     .backend(BackendKind::Functional { workers: 2 })
///     .build()
///     .unwrap();
/// let batch = TokenBatch::random(2, 16, 1);
/// let result = session.run(&batch).unwrap();
/// assert_eq!(result.tokens[0].outputs,
///            program.reference_output(&batch.tokens()[0]));
/// assert_eq!(session.stats().tokens(), 16);
/// ```
pub struct Session {
    cfg: MacroConfig,
    backend: Box<dyn MacroBackend>,
    stats: SessionStats,
}

impl Session {
    /// Starts building a session for one macro configuration.
    pub fn builder(cfg: MacroConfig) -> SessionBuilder {
        SessionBuilder {
            cfg,
            program: None,
            kind: BackendKind::default(),
        }
    }

    /// Wraps a caller-constructed backend (downstream crates can implement
    /// [`MacroBackend`] and still get sessions and stats).
    pub fn from_backend(cfg: MacroConfig, backend: Box<dyn MacroBackend>) -> Session {
        Session {
            cfg,
            backend,
            stats: SessionStats::default(),
        }
    }

    /// Runs one batch and folds its measurements into the session stats.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`BackendError`]s; a failed batch
    /// contributes nothing to the statistics.
    pub fn run(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        let t0 = Instant::now();
        let result = self.backend.run_batch(batch)?;
        self.stats.absorb(&result, t0.elapsed());
        Ok(result)
    }

    /// Aggregate statistics over every successful batch so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The executing backend's name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The session's macro configuration.
    pub fn config(&self) -> &MacroConfig {
        &self.cfg
    }

    /// The backend's netlist, when it drives one (RTL backends) — for
    /// probing violations or enabling waveform tracing from tests.
    pub fn rtl(&self) -> Option<&AcceleratorRtl> {
        self.backend.rtl()
    }

    /// Mutable netlist access, when the backend drives one — for energy
    /// resets, event caps and tracing.
    pub fn rtl_mut(&mut self) -> Option<&mut AcceleratorRtl> {
        self.backend.rtl_mut()
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("backend", &self.backend.name())
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Aggregate measurements across every batch a [`Session`] has run.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    tokens: u64,
    batches: u64,
    wall: Duration,
    energy: Joules,
    measured_energy: bool,
    /// Kept sorted (re-sorted once per absorbed batch), so percentile
    /// queries are a direct index instead of a clone-and-sort.
    latencies: Vec<f64>,
}

impl SessionStats {
    fn absorb(&mut self, result: &BatchResult, wall: Duration) {
        self.tokens += result.tokens.len() as u64;
        self.batches += 1;
        self.wall += wall;
        if let Some(e) = result.energy {
            self.energy += e;
            self.measured_energy = true;
        } else {
            let mut any = false;
            for obs in &result.tokens {
                if let Some(e) = obs.energy {
                    self.energy += e;
                    any = true;
                }
            }
            self.measured_energy |= any;
        }
        let unsorted_from = self.latencies.len();
        self.latencies.extend(
            result
                .tokens
                .iter()
                .filter_map(|t| t.latency)
                .map(|l| l.value()),
        );
        if self.latencies.len() > unsorted_from {
            self.latencies
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        }
    }

    /// Tokens run so far.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Batches run so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Host wall-clock time spent inside [`Session::run`].
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Host-side throughput: tokens per wall-clock second.
    pub fn tokens_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.tokens as f64 / secs
        } else {
            0.0
        }
    }

    /// Total measured/modelled energy, when any backend reported it.
    pub fn total_energy(&self) -> Option<Joules> {
        self.measured_energy.then_some(self.energy)
    }

    /// Median per-token latency, when measured.
    pub fn p50_token_latency(&self) -> Option<Seconds> {
        self.percentile(50.0)
    }

    /// 99th-percentile per-token latency, when measured.
    pub fn p99_token_latency(&self) -> Option<Seconds> {
        self.percentile(99.0)
    }

    /// Arbitrary latency percentile (nearest-rank), when measured.
    pub fn percentile(&self, p: f64) -> Option<Seconds> {
        if self.latencies.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.latencies.len() as f64).ceil() as usize;
        Some(Seconds(
            self.latencies[rank.clamp(1, self.latencies.len()) - 1],
        ))
    }
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tokens in {} batches, {:.0} tokens/s",
            self.tokens,
            self.batches,
            self.tokens_per_sec()
        )?;
        if let (Some(p50), Some(p99)) = (self.p50_token_latency(), self.p99_token_latency()) {
            write!(f, ", token latency p50 {p50} / p99 {p99}")?;
        }
        if let Some(e) = self.total_energy() {
            write!(f, ", {e} total")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Fidelity;

    #[test]
    fn builder_requires_a_program() {
        assert_eq!(
            Session::builder(MacroConfig::new(1, 1))
                .build()
                .unwrap_err(),
            BackendError::MissingProgram
        );
    }

    #[test]
    fn builder_rejects_mismatched_programs() {
        let err = Session::builder(MacroConfig::new(2, 2))
            .program(MacroProgram::random(2, 3, 0))
            .build()
            .unwrap_err();
        assert!(matches!(err, BackendError::ProgramMismatch { .. }), "{err}");
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(2, 2, 5);
        let mut s = Session::builder(cfg)
            .program(program)
            .backend(BackendKind::Analytic)
            .build()
            .unwrap();
        s.run(&TokenBatch::random(2, 3, 1)).unwrap();
        s.run(&TokenBatch::random(2, 5, 2)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.tokens(), 8);
        assert_eq!(stats.batches(), 2);
        assert!(stats.total_energy().unwrap().value() > 0.0);
        let p50 = stats.p50_token_latency().unwrap();
        let p99 = stats.p99_token_latency().unwrap();
        assert!(p50 <= p99 && p50.value() > 0.0);
        let text = stats.to_string();
        assert!(text.contains("8 tokens") && text.contains("p50"), "{text}");
    }

    #[test]
    fn failed_batches_do_not_pollute_stats() {
        let cfg = MacroConfig::new(1, 2);
        let mut s = Session::builder(cfg)
            .program(MacroProgram::random(1, 2, 5))
            .build()
            .unwrap();
        let wrong = TokenBatch::random(3, 2, 1);
        assert!(s.run(&wrong).is_err());
        assert_eq!(s.stats().tokens(), 0);
        assert_eq!(s.stats().batches(), 0);
        assert!(s.stats().p50_token_latency().is_none());
        assert!(s.stats().total_energy().is_none());
        assert!(s.rtl().is_none(), "functional backend has no netlist");
    }

    #[test]
    fn sharded_sessions_are_first_class() {
        use crate::backend::ShardKind;
        let cfg = MacroConfig::new(6, 2);
        let program = MacroProgram::random(6, 2, 13);
        let mut s = Session::builder(cfg)
            .program(program.clone())
            .backend(BackendKind::Sharded {
                shards: 3,
                inner: ShardKind::Analytic,
            })
            .build()
            .unwrap();
        let batch = TokenBatch::random(2, 4, 6);
        let result = s.run(&batch).unwrap();
        assert_eq!(s.backend_name(), "sharded");
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(result.tokens[t].outputs, program.reference_output(token));
        }
        // Shard measurements flow into the session stats unchanged.
        let stats = s.stats();
        assert_eq!(stats.tokens(), 4);
        assert!(stats.total_energy().unwrap().value() > 0.0);
        assert!(stats.p50_token_latency().is_some());
        assert!(s.rtl().is_none(), "netlists live on the shard workers");
    }

    #[test]
    fn rtl_sessions_expose_the_netlist() {
        let cfg = MacroConfig::new(1, 1);
        let mut s = Session::builder(cfg)
            .program(MacroProgram::random(1, 1, 2))
            .backend(BackendKind::Rtl {
                fidelity: Fidelity::Sequential,
            })
            .build()
            .unwrap();
        s.run(&TokenBatch::random(1, 2, 3)).unwrap();
        assert!(s.rtl().unwrap().simulator().violations().is_empty());
        assert_eq!(s.backend_name(), "rtl-sequential");
        assert!(s.stats().tokens_per_sec() > 0.0);
    }
}
