//! The event-driven-netlist fidelity backend.

use crate::backend::{validate_program, Fidelity, MacroBackend};
use crate::batch::{BatchResult, TokenBatch, TokenObservation};
use crate::error::BackendError;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};

/// Executes batches on the full event-driven netlist.
///
/// * [`Fidelity::Sequential`] drains each token completely before the
///   next: per-token observations carry exact latency *and* energy.
/// * [`Fidelity::Pipelined`] streams tokens with self-synchronous overlap:
///   per-token outputs are captured at each output-register strobe
///   (via [`AcceleratorRtl::run_pipelined_observed`]), latency covers
///   offer-to-capture, and energy is reported as a batch aggregate.
#[derive(Debug)]
pub struct RtlBackend {
    rtl: AcceleratorRtl,
    fidelity: Fidelity,
}

impl RtlBackend {
    /// Builds the netlist for `cfg`, programs it, and wraps it.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ProgramMismatch`] /
    /// [`BackendError::MalformedProgram`] when the program cannot be
    /// loaded into this configuration.
    pub fn new(
        cfg: &MacroConfig,
        program: &MacroProgram,
        fidelity: Fidelity,
    ) -> Result<RtlBackend, BackendError> {
        validate_program(cfg, program)?;
        Ok(RtlBackend {
            rtl: AcceleratorRtl::build(cfg, program),
            fidelity,
        })
    }

    /// Wraps an already-built netlist (e.g. one with waveform tracing or
    /// a custom event cap already configured).
    pub fn from_rtl(rtl: AcceleratorRtl, fidelity: Fidelity) -> RtlBackend {
        RtlBackend { rtl, fidelity }
    }

    /// The driving mode.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Mutable netlist access (tracing, event caps, probes).
    pub fn rtl_mut(&mut self) -> &mut AcceleratorRtl {
        &mut self.rtl
    }
}

impl MacroBackend for RtlBackend {
    fn name(&self) -> &'static str {
        match self.fidelity {
            Fidelity::Sequential => "rtl-sequential",
            Fidelity::Pipelined => "rtl-pipelined",
        }
    }

    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        batch.check_shape(self.rtl.program().ns())?;
        match self.fidelity {
            Fidelity::Sequential => {
                let t0 = self.rtl.simulator().now();
                let mut tokens = Vec::with_capacity(batch.len());
                let mut total_energy = maddpipe_tech::units::Joules(0.0);
                for token in batch.tokens() {
                    let r = self.rtl.run_token(token)?;
                    total_energy += r.energy;
                    tokens.push(TokenObservation {
                        outputs: r.outputs,
                        latency: Some(r.latency.to_seconds()),
                        energy: Some(r.energy),
                    });
                }
                let makespan = self.rtl.simulator().now().since(t0);
                Ok(BatchResult {
                    backend: self.name(),
                    tokens,
                    makespan: Some(makespan.to_seconds()),
                    energy: Some(total_energy),
                })
            }
            Fidelity::Pipelined => {
                let run = self.rtl.run_pipelined_observed(batch.tokens())?;
                let tokens = run
                    .outputs
                    .into_iter()
                    .zip(&run.latencies)
                    .map(|(outputs, &latency)| TokenObservation {
                        outputs,
                        latency: Some(latency.to_seconds()),
                        energy: None,
                    })
                    .collect();
                Ok(BatchResult {
                    backend: self.name(),
                    tokens,
                    makespan: Some(run.makespan.to_seconds()),
                    energy: Some(run.energy),
                })
            }
        }
    }

    fn rtl(&self) -> Option<&AcceleratorRtl> {
        Some(&self.rtl)
    }

    fn rtl_mut(&mut self) -> Option<&mut AcceleratorRtl> {
        Some(&mut self.rtl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_tech::corner::{Corner, OperatingPoint};
    use maddpipe_tech::units::Volts;

    fn cfg() -> MacroConfig {
        MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg))
    }

    #[test]
    fn sequential_and_pipelined_match_the_reference() {
        let cfg = cfg();
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 3);
        let batch = TokenBatch::random(cfg.ns, 4, 8);
        let mut seq = RtlBackend::new(&cfg, &program, Fidelity::Sequential).unwrap();
        let mut pip = RtlBackend::new(&cfg, &program, Fidelity::Pipelined).unwrap();
        let rs = seq.run_batch(&batch).unwrap();
        let rp = pip.run_batch(&batch).unwrap();
        for (t, token) in batch.tokens().iter().enumerate() {
            let expected = program.reference_output(token);
            assert_eq!(rs.tokens[t].outputs, expected, "sequential token {t}");
            assert_eq!(rp.tokens[t].outputs, expected, "pipelined token {t}");
        }
        // Sequential measures per-token energy; pipelined aggregates it.
        assert!(rs.tokens.iter().all(|t| t.energy.is_some()));
        assert!(rp.tokens.iter().all(|t| t.energy.is_none()));
        assert!(rp.energy.unwrap().value() > 0.0);
        // Overlap: the pipelined makespan beats the sequential one.
        assert!(rp.makespan.unwrap() < rs.makespan.unwrap());
        assert!(seq.rtl().is_some());
    }

    #[test]
    fn mismatched_program_is_rejected() {
        let cfg = cfg();
        let program = MacroProgram::random(1, 2, 3);
        assert!(matches!(
            RtlBackend::new(&cfg, &program, Fidelity::Sequential),
            Err(BackendError::ProgramMismatch { .. })
        ));
    }
}
