//! The backend abstraction: one trait ([`MacroBackend`]), four
//! implementations, one enum ([`BackendKind`]) to pick between them.
//!
//! The contract that makes the implementations interchangeable inside a
//! [`Session`](crate::session::Session): **every backend produces
//! bit-identical `outputs` for the same program and batch**. Latency and
//! energy differ by design — measured on RTL, modelled analytically,
//! absent functionally — but the 16-bit result of each decoder chain is
//! the wrapping LUT sum of the silicon, whoever computes it. The golden
//! proptest in `tests/backend_equivalence.rs` holds every kind (the
//! sharded composition included) to that contract.

use crate::batch::{BatchResult, TokenBatch};
use crate::error::BackendError;
use maddpipe_core::config::{MacroConfig, LEVELS};
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};

/// Builds a backend on whatever thread ends up owning it. The closure
/// runs exactly once, off the caller's thread — which is what lets
/// non-`Send` backends (the event-driven netlist) live on shard workers
/// and queue dispatchers.
pub type BackendFactory =
    Box<dyn FnOnce() -> Result<Box<dyn MacroBackend>, BackendError> + Send + 'static>;

/// How faithfully the RTL backend drives the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// One token at a time, fully drained: exact per-token latency and
    /// energy, no overlap.
    #[default]
    Sequential,
    /// Self-synchronous streaming: token `t+1` enters while `t` is still
    /// in flight. Per-token outputs are captured at each output-register
    /// strobe; energy is reported per batch.
    Pipelined,
}

/// Which backend a [`Session`](crate::session::Session) should execute on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Pure LUT math ([`MacroProgram::reference_output`]) sharded across
    /// `workers` OS threads — the throughput backend.
    Functional {
        /// Worker threads (1 = run on the calling thread).
        workers: usize,
    },
    /// The event-driven netlist — the fidelity backend.
    Rtl {
        /// Sequential handshaking or pipelined streaming.
        fidelity: Fidelity,
    },
    /// The closed-form PPA model with data-dependent encoder timing — the
    /// planning backend.
    Analytic,
    /// `shards` macro instances serving one wide program in parallel, each
    /// owning a contiguous slice of the decoder chains (an even
    /// [`ShardPlan`](crate::plan::ShardPlan) over `cfg.ndec`) and running
    /// `inner` on its own worker thread — the serving-scale backend.
    Sharded {
        /// Macro instances the decoder chains are partitioned across.
        shards: usize,
        /// The backend kind every shard executes on.
        inner: ShardKind,
    },
    /// `inner` behind a content-addressed
    /// [`CachedBackend`](crate::cache::CachedBackend) result tier:
    /// repeated tokens are served from a bounded store instead of
    /// recomputed, and identical tokens within one batch are computed
    /// once (see [`crate::cache`] for the purity contract).
    Cached {
        /// Capacity bounds of the result store.
        cache: crate::cache::CacheConfig,
        /// The backend the cache fronts on a miss.
        inner: CachedKind,
    },
}

impl Default for BackendKind {
    fn default() -> BackendKind {
        BackendKind::Functional { workers: 1 }
    }
}

impl BackendKind {
    /// Validates `program` against `cfg` and constructs the backend this
    /// kind describes — the one construction path shared by the session
    /// builder and the serving queue's dispatcher factory.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ProgramMismatch`] /
    /// [`BackendError::MalformedProgram`] when the program does not fit
    /// the configuration, plus the chosen backend's own constructor
    /// errors (e.g. [`BackendError::InvalidShardPlan`] for sharded
    /// kinds).
    pub fn build(
        self,
        cfg: &MacroConfig,
        program: MacroProgram,
    ) -> Result<Box<dyn MacroBackend>, BackendError> {
        validate_program(cfg, &program)?;
        Ok(match self {
            BackendKind::Functional { workers } => Box::new(
                crate::functional::FunctionalBackend::with_workers(program, workers),
            ),
            BackendKind::Rtl { fidelity } => {
                Box::new(crate::rtl::RtlBackend::new(cfg, &program, fidelity)?)
            }
            BackendKind::Analytic => Box::new(crate::analytic::AnalyticBackend::new(cfg, program)?),
            BackendKind::Sharded { shards, inner } => Box::new(
                crate::sharded::ShardedBackend::uniform(cfg, &program, shards, inner)?,
            ),
            BackendKind::Cached { cache, inner } => {
                let inner_backend = BackendKind::from(inner).build(cfg, program.clone())?;
                Box::new(crate::cache::CachedBackend::new(
                    inner_backend,
                    &program,
                    cache,
                ))
            }
        })
    }
}

/// What a [`BackendKind::Cached`] tier fronts — every [`BackendKind`]
/// except another cache (cache tiers do not nest; a sharded inner may
/// still carry per-shard caches via [`ShardKind::Cached`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedKind {
    /// Pure LUT math on `workers` threads.
    Functional {
        /// Worker threads (1 = the owning thread).
        workers: usize,
    },
    /// The event-driven netlist.
    Rtl {
        /// Sequential handshaking or pipelined streaming.
        fidelity: Fidelity,
    },
    /// The closed-form PPA model.
    Analytic,
    /// A sharded composition behind the cache.
    Sharded {
        /// Macro instances the decoder chains are partitioned across.
        shards: usize,
        /// The backend kind every shard executes on.
        inner: ShardKind,
    },
}

impl Default for CachedKind {
    fn default() -> CachedKind {
        CachedKind::Functional { workers: 1 }
    }
}

impl From<CachedKind> for BackendKind {
    fn from(kind: CachedKind) -> BackendKind {
        match kind {
            CachedKind::Functional { workers } => BackendKind::Functional { workers },
            CachedKind::Rtl { fidelity } => BackendKind::Rtl { fidelity },
            CachedKind::Analytic => BackendKind::Analytic,
            CachedKind::Sharded { shards, inner } => BackendKind::Sharded { shards, inner },
        }
    }
}

impl From<LeafKind> for CachedKind {
    fn from(kind: LeafKind) -> CachedKind {
        match kind {
            LeafKind::Functional { workers } => CachedKind::Functional { workers },
            LeafKind::Rtl { fidelity } => CachedKind::Rtl { fidelity },
            LeafKind::Analytic => CachedKind::Analytic,
        }
    }
}

/// The backend one shard of a
/// [`ShardedBackend`](crate::sharded::ShardedBackend) executes on — the
/// leaf kinds of [`BackendKind`] (shards do not nest), optionally behind
/// a per-shard result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// Pure LUT math on `workers` threads per shard.
    Functional {
        /// Worker threads per shard (1 = the shard's own thread).
        workers: usize,
    },
    /// The event-driven netlist, one per shard.
    Rtl {
        /// Sequential handshaking or pipelined streaming.
        fidelity: Fidelity,
    },
    /// The closed-form PPA model, one per shard.
    Analytic,
    /// A leaf kind behind a per-shard
    /// [`CachedBackend`](crate::cache::CachedBackend): each shard caches
    /// its own sub-program's results, keyed on the sub-program's
    /// fingerprint, and the sharded backend aggregates the counters.
    Cached {
        /// Capacity bounds of each shard's result store.
        cache: crate::cache::CacheConfig,
        /// The leaf kind the shard executes on a miss.
        inner: LeafKind,
    },
}

impl Default for ShardKind {
    fn default() -> ShardKind {
        ShardKind::Functional { workers: 1 }
    }
}

impl From<ShardKind> for BackendKind {
    fn from(kind: ShardKind) -> BackendKind {
        match kind {
            ShardKind::Functional { workers } => BackendKind::Functional { workers },
            ShardKind::Rtl { fidelity } => BackendKind::Rtl { fidelity },
            ShardKind::Analytic => BackendKind::Analytic,
            ShardKind::Cached { cache, inner } => BackendKind::Cached {
                cache,
                inner: inner.into(),
            },
        }
    }
}

/// The three uncached leaf executors — what sits at the very bottom of
/// every composition ([`ShardKind::Cached`] shards run one of these on
/// a miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafKind {
    /// Pure LUT math on `workers` threads.
    Functional {
        /// Worker threads (1 = the owning thread).
        workers: usize,
    },
    /// The event-driven netlist.
    Rtl {
        /// Sequential handshaking or pipelined streaming.
        fidelity: Fidelity,
    },
    /// The closed-form PPA model.
    Analytic,
}

impl Default for LeafKind {
    fn default() -> LeafKind {
        LeafKind::Functional { workers: 1 }
    }
}

impl From<LeafKind> for ShardKind {
    fn from(kind: LeafKind) -> ShardKind {
        match kind {
            LeafKind::Functional { workers } => ShardKind::Functional { workers },
            LeafKind::Rtl { fidelity } => ShardKind::Rtl { fidelity },
            LeafKind::Analytic => ShardKind::Analytic,
        }
    }
}

/// A uniform executor of [`TokenBatch`]es against one programmed macro.
///
/// Implementations must produce bit-identical `outputs` for the same
/// program and batch — that contract is enforced by the cross-backend
/// golden tests (`tests/backend_equivalence.rs`).
pub trait MacroBackend {
    /// Short stable name for logs, stats and results files.
    fn name(&self) -> &'static str;

    /// Runs every token of the batch, in order. A successful result
    /// carries exactly one [`TokenObservation`](crate::batch::TokenObservation)
    /// per input token, in submission order — compositions such as the
    /// sharded backend rely on that alignment when they reassemble
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] for malformed tokens (the
    /// batch is rejected before any work starts) and backend-specific
    /// failures such as [`BackendError::Oscillation`].
    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError>;

    /// The underlying netlist, when this backend drives one — lets tests
    /// probe violations and enable waveform tracing without leaving the
    /// session API. Non-RTL backends return `None`.
    fn rtl(&self) -> Option<&AcceleratorRtl> {
        None
    }

    /// Mutable access to the underlying netlist, when this backend drives
    /// one (energy-counter resets, waveform tracing, event caps).
    fn rtl_mut(&mut self) -> Option<&mut AcceleratorRtl> {
        None
    }

    /// A cumulative [`CacheStats`](crate::cache::CacheStats) snapshot,
    /// when this backend carries a result-cache tier (a
    /// [`CachedBackend`](crate::cache::CachedBackend) directly, or a
    /// composition aggregating one — sharded backends sum their shard
    /// stores, wrappers delegate). Uncached backends return `None`, and
    /// serving layers skip the harvest entirely.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        None
    }
}

/// Checks a program against a configuration: matching shape and hardware
/// tree depth. Shared by the session builder and the backend constructors.
///
/// # Errors
///
/// Returns [`BackendError::ProgramMismatch`] on a shape disagreement and
/// [`BackendError::MalformedProgram`] when a hash tree does not have the
/// hardware's fixed depth.
pub fn validate_program(cfg: &MacroConfig, program: &MacroProgram) -> Result<(), BackendError> {
    if program.ndec() != cfg.ndec || program.ns() != cfg.ns {
        return Err(BackendError::ProgramMismatch {
            cfg_ndec: cfg.ndec,
            cfg_ns: cfg.ns,
            program_ndec: program.ndec(),
            program_ns: program.ns(),
        });
    }
    for (s, tree) in program.trees.iter().enumerate() {
        if tree.levels() != LEVELS {
            return Err(BackendError::MalformedProgram {
                reason: format!(
                    "stage {s} tree has {} levels, hardware encoder is {LEVELS}-level",
                    tree.levels()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_core::macro_rtl::MacroProgram;

    #[test]
    fn program_shape_is_validated() {
        let cfg = MacroConfig::new(2, 2);
        let good = MacroProgram::random(2, 2, 1);
        assert!(validate_program(&cfg, &good).is_ok());
        let wrong = MacroProgram::random(3, 2, 1);
        assert_eq!(
            validate_program(&cfg, &wrong),
            Err(BackendError::ProgramMismatch {
                cfg_ndec: 2,
                cfg_ns: 2,
                program_ndec: 3,
                program_ns: 2,
            })
        );
    }

    #[test]
    fn default_kind_is_single_threaded_functional() {
        assert_eq!(
            BackendKind::default(),
            BackendKind::Functional { workers: 1 }
        );
        assert_eq!(Fidelity::default(), Fidelity::Sequential);
    }
}
