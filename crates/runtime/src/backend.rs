//! The backend abstraction: one trait ([`MacroBackend`]), four
//! implementations, one enum ([`BackendKind`]) to pick between them.
//!
//! The contract that makes the implementations interchangeable inside a
//! [`Session`](crate::session::Session): **every backend produces
//! bit-identical `outputs` for the same program and batch**. Latency and
//! energy differ by design — measured on RTL, modelled analytically,
//! absent functionally — but the 16-bit result of each decoder chain is
//! the wrapping LUT sum of the silicon, whoever computes it. The golden
//! proptest in `tests/backend_equivalence.rs` holds every kind (the
//! sharded composition included) to that contract.

use crate::batch::{BatchResult, TokenBatch};
use crate::error::BackendError;
use maddpipe_core::config::{MacroConfig, LEVELS};
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};

/// Builds a backend on whatever thread ends up owning it. The closure
/// runs exactly once, off the caller's thread — which is what lets
/// non-`Send` backends (the event-driven netlist) live on shard workers
/// and queue dispatchers.
pub type BackendFactory =
    Box<dyn FnOnce() -> Result<Box<dyn MacroBackend>, BackendError> + Send + 'static>;

/// How faithfully the RTL backend drives the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// One token at a time, fully drained: exact per-token latency and
    /// energy, no overlap.
    #[default]
    Sequential,
    /// Self-synchronous streaming: token `t+1` enters while `t` is still
    /// in flight. Per-token outputs are captured at each output-register
    /// strobe; energy is reported per batch.
    Pipelined,
}

/// Which backend a [`Session`](crate::session::Session) should execute on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Pure LUT math ([`MacroProgram::reference_output`]) sharded across
    /// `workers` OS threads — the throughput backend.
    Functional {
        /// Worker threads (1 = run on the calling thread).
        workers: usize,
    },
    /// The event-driven netlist — the fidelity backend.
    Rtl {
        /// Sequential handshaking or pipelined streaming.
        fidelity: Fidelity,
    },
    /// The closed-form PPA model with data-dependent encoder timing — the
    /// planning backend.
    Analytic,
    /// `shards` macro instances serving one wide program in parallel, each
    /// owning a contiguous slice of the decoder chains (an even
    /// [`ShardPlan`](crate::plan::ShardPlan) over `cfg.ndec`) and running
    /// `inner` on its own worker thread — the serving-scale backend.
    Sharded {
        /// Macro instances the decoder chains are partitioned across.
        shards: usize,
        /// The backend kind every shard executes on.
        inner: ShardKind,
    },
}

impl Default for BackendKind {
    fn default() -> BackendKind {
        BackendKind::Functional { workers: 1 }
    }
}

impl BackendKind {
    /// Validates `program` against `cfg` and constructs the backend this
    /// kind describes — the one construction path shared by the session
    /// builder and the serving queue's dispatcher factory.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ProgramMismatch`] /
    /// [`BackendError::MalformedProgram`] when the program does not fit
    /// the configuration, plus the chosen backend's own constructor
    /// errors (e.g. [`BackendError::InvalidShardPlan`] for sharded
    /// kinds).
    pub fn build(
        self,
        cfg: &MacroConfig,
        program: MacroProgram,
    ) -> Result<Box<dyn MacroBackend>, BackendError> {
        validate_program(cfg, &program)?;
        Ok(match self {
            BackendKind::Functional { workers } => Box::new(
                crate::functional::FunctionalBackend::with_workers(program, workers),
            ),
            BackendKind::Rtl { fidelity } => {
                Box::new(crate::rtl::RtlBackend::new(cfg, &program, fidelity)?)
            }
            BackendKind::Analytic => Box::new(crate::analytic::AnalyticBackend::new(cfg, program)?),
            BackendKind::Sharded { shards, inner } => Box::new(
                crate::sharded::ShardedBackend::uniform(cfg, &program, shards, inner)?,
            ),
        })
    }
}

/// The backend one shard of a
/// [`ShardedBackend`](crate::sharded::ShardedBackend) executes on — the
/// three *leaf* kinds of [`BackendKind`] (shards do not nest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// Pure LUT math on `workers` threads per shard.
    Functional {
        /// Worker threads per shard (1 = the shard's own thread).
        workers: usize,
    },
    /// The event-driven netlist, one per shard.
    Rtl {
        /// Sequential handshaking or pipelined streaming.
        fidelity: Fidelity,
    },
    /// The closed-form PPA model, one per shard.
    Analytic,
}

impl Default for ShardKind {
    fn default() -> ShardKind {
        ShardKind::Functional { workers: 1 }
    }
}

impl From<ShardKind> for BackendKind {
    fn from(kind: ShardKind) -> BackendKind {
        match kind {
            ShardKind::Functional { workers } => BackendKind::Functional { workers },
            ShardKind::Rtl { fidelity } => BackendKind::Rtl { fidelity },
            ShardKind::Analytic => BackendKind::Analytic,
        }
    }
}

/// A uniform executor of [`TokenBatch`]es against one programmed macro.
///
/// Implementations must produce bit-identical `outputs` for the same
/// program and batch — that contract is enforced by the cross-backend
/// golden tests (`tests/backend_equivalence.rs`).
pub trait MacroBackend {
    /// Short stable name for logs, stats and results files.
    fn name(&self) -> &'static str;

    /// Runs every token of the batch, in order. A successful result
    /// carries exactly one [`TokenObservation`](crate::batch::TokenObservation)
    /// per input token, in submission order — compositions such as the
    /// sharded backend rely on that alignment when they reassemble
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ShapeMismatch`] for malformed tokens (the
    /// batch is rejected before any work starts) and backend-specific
    /// failures such as [`BackendError::Oscillation`].
    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError>;

    /// The underlying netlist, when this backend drives one — lets tests
    /// probe violations and enable waveform tracing without leaving the
    /// session API. Non-RTL backends return `None`.
    fn rtl(&self) -> Option<&AcceleratorRtl> {
        None
    }

    /// Mutable access to the underlying netlist, when this backend drives
    /// one (energy-counter resets, waveform tracing, event caps).
    fn rtl_mut(&mut self) -> Option<&mut AcceleratorRtl> {
        None
    }
}

/// Checks a program against a configuration: matching shape and hardware
/// tree depth. Shared by the session builder and the backend constructors.
///
/// # Errors
///
/// Returns [`BackendError::ProgramMismatch`] on a shape disagreement and
/// [`BackendError::MalformedProgram`] when a hash tree does not have the
/// hardware's fixed depth.
pub fn validate_program(cfg: &MacroConfig, program: &MacroProgram) -> Result<(), BackendError> {
    if program.ndec() != cfg.ndec || program.ns() != cfg.ns {
        return Err(BackendError::ProgramMismatch {
            cfg_ndec: cfg.ndec,
            cfg_ns: cfg.ns,
            program_ndec: program.ndec(),
            program_ns: program.ns(),
        });
    }
    for (s, tree) in program.trees.iter().enumerate() {
        if tree.levels() != LEVELS {
            return Err(BackendError::MalformedProgram {
                reason: format!(
                    "stage {s} tree has {} levels, hardware encoder is {LEVELS}-level",
                    tree.levels()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_core::macro_rtl::MacroProgram;

    #[test]
    fn program_shape_is_validated() {
        let cfg = MacroConfig::new(2, 2);
        let good = MacroProgram::random(2, 2, 1);
        assert!(validate_program(&cfg, &good).is_ok());
        let wrong = MacroProgram::random(3, 2, 1);
        assert_eq!(
            validate_program(&cfg, &wrong),
            Err(BackendError::ProgramMismatch {
                cfg_ndec: 2,
                cfg_ns: 2,
                program_ndec: 3,
                program_ns: 2,
            })
        );
    }

    #[test]
    fn default_kind_is_single_threaded_functional() {
        assert_eq!(
            BackendKind::default(),
            BackendKind::Functional { workers: 1 }
        );
        assert_eq!(Fidelity::default(), Fidelity::Sequential);
    }
}
