//! The closed-form planning backend.

use crate::backend::{validate_program, MacroBackend};
use crate::batch::{BatchResult, TokenBatch, TokenObservation};
use crate::error::BackendError;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::dlc::{ripple_depth, to_offset_binary};
use maddpipe_core::macro_rtl::MacroProgram;
use maddpipe_core::model::MacroModel;
use maddpipe_tech::units::{Joules, Seconds};

/// Executes batches against the analytic PPA model ([`MacroModel`]):
/// outputs come from the exact LUT math, while latency and energy are
/// closed-form estimates — **data-dependent** for latency, because each
/// stage's encoder delay is derived from the actual comparator ripple
/// depths of that token's decision path (the Fig. 4 E effect), not the
/// best/worst envelope.
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    program: MacroProgram,
    model: MacroModel,
}

impl AnalyticBackend {
    /// Binds `program` to the model of `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ProgramMismatch`] /
    /// [`BackendError::MalformedProgram`] when the program does not fit
    /// the configuration.
    pub fn new(cfg: &MacroConfig, program: MacroProgram) -> Result<AnalyticBackend, BackendError> {
        validate_program(cfg, &program)?;
        Ok(AnalyticBackend {
            program,
            model: MacroModel::new(cfg.clone()),
        })
    }

    /// The bound model.
    pub fn model(&self) -> &MacroModel {
        &self.model
    }

    /// Modelled forward latency of one token: the sum over stages of the
    /// block latency with that stage's actual comparator ripple depths.
    fn token_latency(&self, token: &[[i8; maddpipe_core::config::SUBVECTOR_LEN]]) -> Seconds {
        let mut total = Seconds::ZERO;
        for (s, sub) in token.iter().enumerate() {
            let ripples: Vec<usize> = self.program.trees[s]
                .decision_path(sub)
                .iter()
                .map(|&(dim, t, _)| ripple_depth(to_offset_binary(sub[dim]), to_offset_binary(t)))
                .collect();
            total += self.model.block_latency(&ripples).total();
        }
        total
    }
}

impl MacroBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn run_batch(&mut self, batch: &TokenBatch) -> Result<BatchResult, BackendError> {
        batch.check_shape(self.program.ns())?;
        let per_block = self.model.block_energy().total();
        let token_energy = per_block * self.program.ns() as f64;
        let mut makespan = Seconds::ZERO;
        let mut total_energy = Joules(0.0);
        let tokens = batch
            .tokens()
            .iter()
            .map(|token| {
                let latency = self.token_latency(token);
                makespan += latency;
                total_energy += token_energy;
                TokenObservation {
                    outputs: self.program.reference_output(token),
                    latency: Some(latency),
                    energy: Some(token_energy),
                }
            })
            .collect();
        Ok(BatchResult {
            backend: self.name(),
            tokens,
            // Sequential (non-overlapped) estimate: the sum of per-token
            // forward latencies.
            makespan: Some(makespan),
            energy: Some(total_energy),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_amm::bdt::BdtEncoder;
    use maddpipe_amm::quant::QuantScale;
    use maddpipe_core::config::K;
    use maddpipe_core::config::{LEVELS, SUBVECTOR_LEN};

    #[test]
    fn latency_is_data_dependent_and_bounded() {
        let cfg = MacroConfig::new(1, 1);
        // All thresholds at 0: a 0 input walks all 8 comparator bits per
        // level, a large input decides at the MSB.
        let tree = BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; (1 << LEVELS) - 1])
            .unwrap()
            .quantize(QuantScale::UNIT);
        let program = MacroProgram {
            trees: vec![tree],
            luts: vec![vec![[1i8; K]]],
        };
        let mut backend = AnalyticBackend::new(&cfg, program).unwrap();
        let fast = TokenBatch::single(vec![[100i8; SUBVECTOR_LEN]]);
        let slow = TokenBatch::single(vec![[0i8; SUBVECTOR_LEN]]);
        let lf = backend.run_batch(&fast).unwrap().tokens[0].latency.unwrap();
        let ls = backend.run_batch(&slow).unwrap().tokens[0].latency.unwrap();
        assert!(ls > lf, "boundary input {ls} must model slower than {lf}");
        let model = backend.model().clone();
        assert!(lf >= model.block_latency_best().total());
        assert!(ls <= model.block_latency_worst().total());
        // The all-equal input is exactly the worst case.
        assert_eq!(ls, model.block_latency_worst().total());
    }

    #[test]
    fn outputs_match_the_reference_and_energy_accumulates() {
        let cfg = MacroConfig::new(3, 2);
        let program = MacroProgram::random(3, 2, 11);
        let mut backend = AnalyticBackend::new(&cfg, program.clone()).unwrap();
        let batch = TokenBatch::random(2, 5, 21);
        let r = backend.run_batch(&batch).unwrap();
        for (t, token) in batch.tokens().iter().enumerate() {
            assert_eq!(r.tokens[t].outputs, program.reference_output(token));
        }
        let per_token = r.tokens[0].energy.unwrap();
        assert!((r.energy.unwrap().value() - per_token.value() * 5.0).abs() < 1e-24);
        assert!(r.makespan.unwrap().value() > 0.0);
    }
}
