//! Multi-layer streaming dataflow serving: a whole network as one
//! deployment.
//!
//! The paper's macro is *self-synchronous pipeline accumulation* —
//! stages fire as soon as their inputs arrive, with completion detection
//! instead of a global clock. A [`PipelineGraph`] is the serving-stack
//! analogue of that fabric: a chain of stages, each on its own thread,
//! connected by **bounded** inter-stage queues. A stage fires as soon as
//! an item arrives in its input queue; a full queue blocks the producer,
//! so backpressure propagates hop by hop back to [`PipelineGraph::submit`],
//! which answers typed [`BackendError::QueueFull`] instead of buffering
//! without limit — credit-based flow control, with the queue capacity as
//! the per-hop credit.
//!
//! Two stage flavours compose freely:
//!
//! * [`MacroStage`] — a `(program, BackendKind)` recipe served by its
//!   own [`ReplicaPool`]: an `encode` closure turns the float activation
//!   into a [`TokenBatch`] (e.g. im2col patches), the pool runs it on
//!   the macro (with [`RecoveryPolicy`]-driven retry/respawn), and a
//!   `decode` closure turns the [`BatchResult`] back into floats.
//! * [`HostStage`] — a lightweight host-side closure for the layers that
//!   never touch the macro (ReLU, pooling, BN affine, the final linear).
//!
//! `crates/nn` lowers a whole network into a [`PipelineSpec`] (see
//! `Network::to_pipeline_spec`), so "serve a CNN" becomes
//! `submit(image) -> logits ticket`.
//!
//! Failure semantics mirror the rest of the serving stack, one level up:
//!
//! * an item-level failure (exhausted retries, a wrong-width payload
//!   fault) resolves *that* ticket with [`BackendError::Stage`] naming
//!   the stage, and the pipeline keeps serving everyone else
//!   bit-identically;
//! * a stage-level death (a stage's pool closed — every replica
//!   quarantined) fails the whole graph: intake closes, and **every**
//!   in-flight ticket resolves with the typed stage error. No ticket is
//!   ever leaked.
//!
//! Tickets are condvar-backed like
//! [`BatchTicket`](crate::queue::BatchTicket), with one addition: a
//! [`PipelineTicket::state`] probe reporting *where* the request
//! currently is ([`TicketState::Queued`]/[`TicketState::Running`] at
//! stage `k`), so a timed-out wait can say "blocked at stage k" instead
//! of timing out opaquely.
//!
//! ```
//! use maddpipe_runtime::prelude::*;
//! use maddpipe_core::prelude::*;
//! use maddpipe_amm::quant::QuantScale;
//!
//! let cfg = MacroConfig::new(2, 1);
//! let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
//! let spec = PipelineSpec::new()
//!     .host("halve", |x: Vec<f32>| Ok(x.into_iter().map(|v| v * 0.5).collect()))
//!     .macro_stage(
//!         MacroStage::new(
//!             "macro",
//!             &cfg,
//!             program,
//!             BackendKind::Functional { workers: 1 },
//!             |x: &[f32]| TokenBatch::from_f32_rows(&[x], 1, QuantScale::UNIT),
//!             |r: &BatchResult| Ok(r.tokens[0].outputs.iter().map(|&v| v as f32).collect()),
//!         )
//!         .unwrap(),
//!     );
//! let pipe = PipelineGraph::build(spec, PipelinePolicy::default()).unwrap();
//! let reply = pipe.submit(vec![2.0; 9]).unwrap().wait().unwrap();
//! assert_eq!(reply.outputs.len(), 2); // one decoder chain output each
//! let stats = pipe.shutdown();
//! assert_eq!(stats.images(), 1);
//! assert_eq!(stats.stage_profiles().len(), 2);
//! ```

use crate::backend::BackendKind;
use crate::batch::{BatchResult, TokenBatch};
use crate::error::{BackendError, QueueLimit};
use crate::pool::{RecoveryPolicy, ReplicaFactory, ReplicaPool, ServePolicy};
use crate::queue::QueuePolicy;
use crate::session::SessionStats;
use maddpipe_core::config::MacroConfig;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A host-side stage function: one activation vector in, one out.
pub type HostFn = Arc<dyn Fn(Vec<f32>) -> Result<Vec<f32>, BackendError> + Send + Sync>;

/// Turns a stage's input activation into the [`TokenBatch`] its macro
/// runs (e.g. im2col patches, one token per output pixel).
pub type EncodeFn = Arc<dyn Fn(&[f32]) -> Result<TokenBatch, BackendError> + Send + Sync>;

/// Turns the macro's [`BatchResult`] back into the stage's output
/// activation.
pub type DecodeFn = Arc<dyn Fn(&BatchResult) -> Result<Vec<f32>, BackendError> + Send + Sync>;

/// A lightweight host-side pipeline stage: a pure closure on the stage
/// thread, for the layers that never touch the macro (ReLU, pooling,
/// affine/BN, linear heads).
///
/// A panicking closure costs only the item that triggered it (resolved
/// as [`BackendError::ReplicaPanicked`] wrapped in
/// [`BackendError::Stage`]); host stages are not retried — a pure
/// closure that panics once panics every time.
#[derive(Clone)]
pub struct HostStage {
    name: String,
    apply: HostFn,
}

impl HostStage {
    /// Wraps a host closure as a named stage.
    pub fn new(
        name: impl Into<String>,
        apply: impl Fn(Vec<f32>) -> Result<Vec<f32>, BackendError> + Send + Sync + 'static,
    ) -> HostStage {
        HostStage {
            name: name.into(),
            apply: Arc::new(apply),
        }
    }

    /// The stage's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl core::fmt::Debug for HostStage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HostStage")
            .field("name", &self.name)
            .finish()
    }
}

/// A macro-served pipeline stage: a rebuildable backend recipe (so the
/// stage's [`ReplicaPool`] can respawn crashed replicas), the
/// encode/decode pair that moves activations across the float/token
/// boundary, and the [`StagePolicy`] sizing the pool.
#[derive(Clone)]
pub struct MacroStage {
    name: String,
    ns: usize,
    recipe: ReplicaFactory,
    policy: StagePolicy,
    encode: EncodeFn,
    decode: DecodeFn,
}

impl MacroStage {
    /// Builds a macro stage from a `(program, kind)` recipe, validating
    /// the program against `cfg` here (fail fast, on the caller's
    /// thread). The backend itself is built later, on the stage's
    /// replica threads.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::ProgramMismatch`] /
    /// [`BackendError::MalformedProgram`] when the program does not fit
    /// the configuration.
    pub fn new(
        name: impl Into<String>,
        cfg: &MacroConfig,
        program: maddpipe_core::macro_rtl::MacroProgram,
        kind: BackendKind,
        encode: impl Fn(&[f32]) -> Result<TokenBatch, BackendError> + Send + Sync + 'static,
        decode: impl Fn(&BatchResult) -> Result<Vec<f32>, BackendError> + Send + Sync + 'static,
    ) -> Result<MacroStage, BackendError> {
        crate::backend::validate_program(cfg, &program)?;
        let cfg = cfg.clone();
        let ns = cfg.ns;
        let recipe: ReplicaFactory = Arc::new(move || kind.build(&cfg, program.clone()));
        Ok(MacroStage::from_recipe(name, ns, recipe, encode, decode))
    }

    /// Builds a macro stage from an arbitrary rebuildable recipe — the
    /// hook tests use to wrap a stage's backends in
    /// [`ChaosBackend`](crate::chaos::ChaosBackend) via
    /// [`wrap_recipe`](crate::chaos::wrap_recipe).
    pub fn from_recipe(
        name: impl Into<String>,
        ns: usize,
        recipe: ReplicaFactory,
        encode: impl Fn(&[f32]) -> Result<TokenBatch, BackendError> + Send + Sync + 'static,
        decode: impl Fn(&BatchResult) -> Result<Vec<f32>, BackendError> + Send + Sync + 'static,
    ) -> MacroStage {
        MacroStage {
            name: name.into(),
            ns,
            recipe,
            policy: StagePolicy::default(),
            encode: Arc::new(encode),
            decode: Arc::new(decode),
        }
    }

    /// Replaces the stage's serving policy.
    #[must_use]
    pub fn with_policy(mut self, policy: StagePolicy) -> MacroStage {
        self.policy = policy;
        self
    }

    /// Rewrites the stage's backend recipe through `wrap` — chaos
    /// wrapping, instrumentation, or any other recipe decorator.
    #[must_use]
    pub fn map_recipe(mut self, wrap: impl FnOnce(ReplicaFactory) -> ReplicaFactory) -> MacroStage {
        self.recipe = wrap(self.recipe);
        self
    }

    /// The stage's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl core::fmt::Debug for MacroStage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MacroStage")
            .field("name", &self.name)
            .field("ns", &self.ns)
            .field("policy", &self.policy)
            .finish()
    }
}

/// One stage of a [`PipelineSpec`]: host-side closure or macro recipe.
#[derive(Debug, Clone)]
pub enum StageSpec {
    /// A host-side closure stage.
    Host(HostStage),
    /// A macro-served stage behind its own replica pool.
    Macro(MacroStage),
}

impl StageSpec {
    /// The stage's name.
    pub fn name(&self) -> &str {
        match self {
            StageSpec::Host(h) => h.name(),
            StageSpec::Macro(m) => m.name(),
        }
    }
}

/// An ordered description of a dataflow pipeline — what
/// [`PipelineGraph::build`] deploys. `crates/nn` lowers a whole network
/// into one of these.
#[derive(Debug, Clone, Default)]
pub struct PipelineSpec {
    stages: Vec<StageSpec>,
}

impl PipelineSpec {
    /// An empty spec; chain [`host`](PipelineSpec::host) /
    /// [`macro_stage`](PipelineSpec::macro_stage) onto it.
    pub fn new() -> PipelineSpec {
        PipelineSpec::default()
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: StageSpec) {
        self.stages.push(stage);
    }

    /// Appends a host-side closure stage (builder style).
    #[must_use]
    pub fn host(
        mut self,
        name: impl Into<String>,
        apply: impl Fn(Vec<f32>) -> Result<Vec<f32>, BackendError> + Send + Sync + 'static,
    ) -> PipelineSpec {
        self.push(StageSpec::Host(HostStage::new(name, apply)));
        self
    }

    /// Appends a macro stage (builder style).
    #[must_use]
    pub fn macro_stage(mut self, stage: MacroStage) -> PipelineSpec {
        self.push(StageSpec::Macro(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the spec has no stages yet.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage names, in order.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages.iter().map(|s| s.name().to_string()).collect()
    }

    /// The stages, in order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Runs `input` through every stage synchronously on the calling
    /// thread — each macro stage's backend built once from its recipe —
    /// and returns every stage's output, in order. This is the golden
    /// reference the deployed graph is held bit-identical to, and the
    /// per-stage counterpart of `Network::forward_trace`.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure (backend construction,
    /// encode/run/decode, or a host closure's own error).
    pub fn reference_trace(&self, input: &[f32]) -> Result<Vec<Vec<f32>>, BackendError> {
        let mut x = input.to_vec();
        let mut trace = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            x = match stage {
                StageSpec::Host(h) => (h.apply)(x)?,
                StageSpec::Macro(m) => {
                    let mut backend = (m.recipe)()?;
                    let batch = (m.encode)(&x)?;
                    let result = backend.run_batch(&batch)?;
                    (m.decode)(&result)?
                }
            };
            trace.push(x.clone());
        }
        Ok(trace)
    }
}

/// How one [`MacroStage`] is served: replica count, recovery budget and
/// the queue policy of its internal [`ReplicaPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePolicy {
    /// Data-parallel replicas serving this stage.
    pub replicas: usize,
    /// Retry/respawn budget for this stage's pool.
    pub recovery: RecoveryPolicy,
    /// The stage pool's coalescing/backpressure policy. The pipeline
    /// raises `max_depth` as needed so the *inter-stage* queues (sized
    /// by [`PipelinePolicy::capacity`]) stay the binding backpressure
    /// bound.
    pub queue: QueuePolicy,
}

impl Default for StagePolicy {
    /// One replica, the default recovery budget, zero linger (a
    /// pipeline stage's window submits items as they arrive; lingering
    /// would only add latency).
    fn default() -> StagePolicy {
        StagePolicy {
            replicas: 1,
            recovery: RecoveryPolicy::default(),
            queue: QueuePolicy::default().with_max_linger(Duration::ZERO),
        }
    }
}

impl StagePolicy {
    /// Sets the replica count (clamped to at least 1 at build time).
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> StagePolicy {
        self.replicas = replicas;
        self
    }

    /// Sets the retry/respawn budget.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> StagePolicy {
        self.recovery = recovery;
        self
    }

    /// Sets the stage pool's queue policy.
    #[must_use]
    pub fn with_queue(mut self, queue: QueuePolicy) -> StagePolicy {
        self.queue = queue;
        self
    }
}

/// Graph-wide deployment knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinePolicy {
    /// Bounded capacity of every inter-stage queue, the intake included —
    /// the per-hop credit of the backpressure scheme. A full intake
    /// rejects [`PipelineGraph::submit`] with
    /// [`BackendError::QueueFull`]; a full inter-stage queue blocks the
    /// upstream stage until the consumer catches up.
    pub capacity: usize,
}

impl Default for PipelinePolicy {
    /// 8 items of credit per hop.
    fn default() -> PipelinePolicy {
        PipelinePolicy { capacity: 8 }
    }
}

impl PipelinePolicy {
    /// Sets the per-hop queue capacity (clamped to at least 1).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> PipelinePolicy {
        self.capacity = capacity.max(1);
        self
    }
}

/// Where a submitted request currently is — the stage-position probe
/// behind [`PipelineTicket::state`]. A wait that timed out can report
/// "blocked at stage k" instead of timing out opaquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketState {
    /// Waiting in stage `stage`'s input queue.
    Queued {
        /// The stage whose queue holds the request.
        stage: usize,
    },
    /// Being served by stage `stage` (in its host closure or its pool).
    Running {
        /// The stage serving the request.
        stage: usize,
    },
    /// Resolved — [`PipelineTicket::wait`]/[`poll`](PipelineTicket::poll)
    /// returns immediately.
    Done,
}

impl TicketState {
    /// The stage the request is at, `None` once resolved.
    pub fn stage(self) -> Option<usize> {
        match self {
            TicketState::Queued { stage } | TicketState::Running { stage } => Some(stage),
            TicketState::Done => None,
        }
    }
}

/// What a resolved [`PipelineTicket`] carries back: the final stage's
/// output (the logits, for a lowered network) and the end-to-end latency
/// from submit to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReply {
    /// The last stage's output activation.
    pub outputs: Vec<f32>,
    /// Host time from submit to the last stage completing.
    pub latency: Duration,
}

/// The state/result cell a pipeline ticket and the stage threads share.
struct PipeCell {
    state: Mutex<PipeCellState>,
    done: Condvar,
}

struct PipeCellState {
    at: TicketState,
    value: Option<Box<Result<PipelineReply, BackendError>>>,
}

impl PipeCell {
    fn new() -> Arc<PipeCell> {
        Arc::new(PipeCell {
            state: Mutex::new(PipeCellState {
                at: TicketState::Queued { stage: 0 },
                value: None,
            }),
            done: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, PipeCellState> {
        // Poison-robust: a resolution must reach the submitter even
        // while a stage thread is unwinding.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Updates the position probe; a no-op once resolved.
    fn set_position(&self, at: TicketState) {
        let mut state = self.lock();
        if state.value.is_none() {
            state.at = at;
        }
    }

    /// Resolves the ticket if still pending (never overwrites an
    /// earlier resolution); returns whether this call resolved it.
    /// `on_win` runs under the cell lock, *before* any waiter can
    /// observe the resolution — so bookkeeping tied to it (the graph's
    /// in-flight count) is already settled when a wait returns.
    fn resolve(&self, value: Result<PipelineReply, BackendError>, on_win: impl FnOnce()) -> bool {
        let mut state = self.lock();
        if state.value.is_some() {
            return false;
        }
        state.at = TicketState::Done;
        state.value = Some(Box::new(value));
        on_win();
        self.done.notify_all();
        true
    }
}

/// A future-like handle to one submitted pipeline request. Resolves
/// exactly once — with the final output, or with a typed
/// [`BackendError::Stage`] naming where in the dataflow it failed.
#[must_use = "a submission resolves only through wait()/poll(); dropping the ticket discards the result"]
pub struct PipelineTicket {
    cell: Arc<PipeCell>,
}

impl PipelineTicket {
    /// Where the request currently is — queued at / running in stage
    /// `k`, or done. The probe a timed-out wait uses to report "blocked
    /// at stage k".
    pub fn state(&self) -> TicketState {
        self.cell.lock().at
    }

    /// Whether the result is ready (a subsequent
    /// [`wait`](PipelineTicket::wait) will not block).
    pub fn is_ready(&self) -> bool {
        self.cell.lock().value.is_some()
    }

    /// Claims the result if ready; hands the ticket back otherwise.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` while the request is still in flight.
    pub fn poll(self) -> Result<Result<PipelineReply, BackendError>, PipelineTicket> {
        {
            let mut state = self.cell.lock();
            if let Some(value) = state.value.take() {
                return Ok(*value);
            }
        }
        Err(self)
    }

    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// Returns the typed [`BackendError`] the pipeline resolved the
    /// request with — a [`BackendError::Stage`] naming the failing
    /// stage, when a stage failed it.
    pub fn wait(self) -> Result<PipelineReply, BackendError> {
        let mut state = self.cell.lock();
        loop {
            if let Some(value) = state.value.take() {
                return *value;
            }
            state = self
                .cell
                .done
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocks up to `timeout` for the request to resolve; hands the
    /// ticket back on deadline so the caller can probe
    /// [`state`](PipelineTicket::state) ("blocked at stage k") and keep
    /// waiting.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the deadline passed with the request
    /// still in flight.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<PipelineReply, BackendError>, PipelineTicket> {
        let deadline = Instant::now().checked_add(timeout);
        {
            let mut state = self.cell.lock();
            loop {
                if let Some(value) = state.value.take() {
                    return Ok(*value);
                }
                let Some(deadline) = deadline else {
                    // Unrepresentable deadline: degrade to unbounded wait.
                    state = self
                        .cell
                        .done
                        .wait(state)
                        .unwrap_or_else(|p| p.into_inner());
                    continue;
                };
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timed_out) = self
                    .cell
                    .done
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                state = guard;
            }
        }
        Err(self)
    }
}

impl core::fmt::Debug for PipelineTicket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PipelineTicket")
            .field("state", &self.state())
            .finish()
    }
}

/// One request travelling the graph.
struct PipeItem {
    payload: Vec<f32>,
    cell: Arc<PipeCell>,
    /// When the graph accepted the request (end-to-end latency origin).
    submitted: Instant,
    /// When the item entered its current stage's queue (residence origin).
    entered: Instant,
}

/// What a stage sees when it asks its input queue for work.
enum Pop {
    /// An item to serve.
    Item(PipeItem),
    /// Nothing queued right now (non-blocking pop only).
    Empty,
    /// The queue is closed and drained: no more work will ever arrive.
    Closed,
    /// The pipeline failed: every still-queued item, for the consumer to
    /// resolve with the failure.
    Failed(Vec<PipeItem>, BackendError),
}

struct QueueInner {
    items: VecDeque<PipeItem>,
    closed: bool,
    failed: Option<BackendError>,
    high_water: u64,
}

/// One bounded inter-stage queue — the per-hop credit of the
/// backpressure scheme.
struct StageQueue {
    inner: Mutex<QueueInner>,
    /// Signalled when space frees up (producers wait on this).
    space: Condvar,
    /// Signalled when work or a terminal state arrives (consumers wait).
    ready: Condvar,
    capacity: usize,
}

impl StageQueue {
    fn new(capacity: usize) -> Arc<StageQueue> {
        Arc::new(StageQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
                failed: None,
                high_water: 0,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity,
        })
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Non-blocking admission — the intake path. Typed backpressure
    /// when full, the stored failure after a stage death.
    fn try_submit(&self, item: PipeItem) -> Result<(), BackendError> {
        let mut q = self.lock();
        if let Some(e) = &q.failed {
            return Err(e.clone());
        }
        if q.closed {
            return Err(BackendError::QueueClosed);
        }
        if q.items.len() >= self.capacity {
            return Err(BackendError::QueueFull {
                limit: QueueLimit::Requests {
                    max_depth: self.capacity,
                },
            });
        }
        q.items.push_back(item);
        q.high_water = q.high_water.max(q.items.len() as u64);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking admission — the stage-to-stage path: a full queue holds
    /// the producer until the consumer catches up (backpressure
    /// propagating upstream hop by hop).
    ///
    /// Hands the item back when the pipeline failed while waiting, so
    /// the caller can resolve its ticket with the failure.
    fn push_blocking(
        &self,
        mut item: PipeItem,
        stage: usize,
    ) -> Result<(), (PipeItem, BackendError)> {
        item.entered = Instant::now();
        item.cell.set_position(TicketState::Queued { stage });
        let mut q = self.lock();
        loop {
            if let Some(e) = &q.failed {
                let e = e.clone();
                drop(q);
                return Err((item, e));
            }
            if q.items.len() < self.capacity {
                break;
            }
            q = self.space.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        q.items.push_back(item);
        q.high_water = q.high_water.max(q.items.len() as u64);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self, block: bool) -> Pop {
        let mut q = self.lock();
        loop {
            if let Some(e) = q.failed.clone() {
                let drained = q.items.drain(..).collect();
                self.space.notify_all();
                return Pop::Failed(drained, e);
            }
            if let Some(item) = q.items.pop_front() {
                self.space.notify_one();
                return Pop::Item(item);
            }
            if q.closed {
                return Pop::Closed;
            }
            if !block {
                return Pop::Empty;
            }
            q = self.ready.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stops admission; already-queued items still drain. Idempotent.
    fn close(&self) {
        let mut q = self.lock();
        q.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Marks the pipeline failed through this queue: producers unblock
    /// with the error, the consumer drains and resolves everything
    /// queued. The first failure wins. Idempotent.
    fn fail(&self, error: &BackendError) {
        let mut q = self.lock();
        if q.failed.is_none() {
            q.failed = Some(error.clone());
        }
        q.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    fn high_water(&self) -> u64 {
        self.lock().high_water
    }
}

/// State shared by the graph handle and every stage thread.
struct PipeShared {
    queues: Vec<Arc<StageQueue>>,
    stats: Mutex<SessionStats>,
    /// Requests accepted and not yet resolved, graph-wide.
    in_flight: AtomicUsize,
    started: Instant,
    /// The first stage-death error, reported to later submitters.
    failure: Mutex<Option<BackendError>>,
}

impl PipeShared {
    fn stats(&self) -> MutexGuard<'_, SessionStats> {
        self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn failure(&self) -> Option<BackendError> {
        self.failure
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Resolves a ticket (first resolution wins) and keeps the in-flight
    /// count exact — the zero-leak invariant lives here. The decrement
    /// runs under the cell lock, so a submitter whose wait just
    /// returned already sees it reflected in [`PipelineGraph::depth`].
    fn finish(&self, cell: &PipeCell, value: Result<PipelineReply, BackendError>) {
        cell.resolve(value, || {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        });
    }

    /// Fails the whole graph: records the error for future submitters
    /// and propagates it through every queue (unblocking producers and
    /// consumers alike).
    fn fail(&self, error: &BackendError) {
        {
            let mut failure = self.failure.lock().unwrap_or_else(|p| p.into_inner());
            if failure.is_none() {
                *failure = Some(error.clone());
            }
        }
        for queue in &self.queues {
            queue.fail(error);
        }
    }
}

/// Per-stage-thread context: where this stage sits in the graph.
struct StageCtx {
    index: usize,
    shared: Arc<PipeShared>,
    input: Arc<StageQueue>,
    /// `None` for the last stage, which resolves tickets instead.
    output: Option<Arc<StageQueue>>,
}

impl StageCtx {
    /// Wraps a stage-local failure with this stage's index.
    fn stage_err(&self, source: BackendError) -> BackendError {
        BackendError::Stage {
            stage: self.index,
            source: Box::new(source),
        }
    }

    /// Completes one item: resolve the ticket (last stage) or push the
    /// new activation downstream, resolving with the failure if the
    /// pipeline died while we were blocked on a full queue.
    fn forward(&self, mut item: PipeItem, outputs: Vec<f32>) {
        match &self.output {
            None => {
                let latency = item.submitted.elapsed();
                self.shared.stats().record_pipeline_reply(latency);
                self.shared
                    .finish(&item.cell, Ok(PipelineReply { outputs, latency }));
            }
            Some(queue) => {
                item.payload = outputs;
                if let Err((item, e)) = queue.push_blocking(item, self.index + 1) {
                    self.shared.finish(&item.cell, Err(e));
                }
            }
        }
    }

    /// Resolves a batch of drained items with the pipeline failure.
    fn drain(&self, items: Vec<PipeItem>, error: &BackendError) {
        for item in items {
            self.shared.finish(&item.cell, Err(error.clone()));
        }
    }

    /// Folds one completed item into this stage's profile.
    fn record_item(&self, busy: Duration, residence: Duration) {
        self.shared
            .stats()
            .record_stage_item(self.index, busy, residence);
    }

    /// Closes the downstream queue (last stage: nothing to close).
    fn close_downstream(&self) {
        if let Some(queue) = &self.output {
            queue.close();
        }
    }
}

/// The serve loop of a host stage: pop, apply, forward. A panicking or
/// erroring closure costs only the item that hit it.
fn host_loop(ctx: StageCtx, stage: HostStage) {
    loop {
        match ctx.input.pop(true) {
            Pop::Empty => continue,
            Pop::Closed => {
                ctx.close_downstream();
                return;
            }
            Pop::Failed(items, error) => {
                ctx.drain(items, &error);
                return;
            }
            Pop::Item(mut item) => {
                item.cell
                    .set_position(TicketState::Running { stage: ctx.index });
                let payload = std::mem::take(&mut item.payload);
                let apply = Arc::clone(&stage.apply);
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(move || apply(payload)));
                let busy = t0.elapsed();
                ctx.record_item(busy, item.entered.elapsed());
                match outcome {
                    Ok(Ok(outputs)) => ctx.forward(item, outputs),
                    Ok(Err(e)) => ctx.shared.finish(&item.cell, Err(ctx.stage_err(e))),
                    Err(_) => ctx.shared.finish(
                        &item.cell,
                        Err(ctx.stage_err(BackendError::ReplicaPanicked)),
                    ),
                }
            }
        }
    }
}

/// The serve loop of a macro stage: keep up to `window` items in flight
/// in the stage's pool, complete them in FIFO order (so the global
/// stream order is preserved whatever the pool's internal scheduling),
/// forward downstream. Item-level failures (exhausted retries, payload
/// faults) resolve only that item's ticket; the pool *closing* — every
/// replica quarantined — is stage death and fails the whole graph.
fn macro_loop(
    ctx: StageCtx,
    pool: Arc<ReplicaPool>,
    encode: EncodeFn,
    decode: DecodeFn,
    window: usize,
) {
    let mut in_flight: VecDeque<(PipeItem, crate::queue::BatchTicket)> = VecDeque::new();
    let mut input_open = true;
    // Fails the graph and resolves everything this stage still holds.
    let stage_death = |ctx: &StageCtx,
                       in_flight: &mut VecDeque<(PipeItem, crate::queue::BatchTicket)>,
                       item: Option<PipeItem>| {
        let error = ctx.stage_err(BackendError::QueueClosed);
        ctx.shared.fail(&error);
        if let Some(item) = item {
            ctx.shared.finish(&item.cell, Err(error.clone()));
        }
        for (item, _ticket) in in_flight.drain(..) {
            ctx.shared.finish(&item.cell, Err(error.clone()));
        }
        // This stage's own input queue has no consumer after we return:
        // drain it here (`fail` above marked it, so pop reports Failed).
        if let Pop::Failed(items, error) = ctx.input.pop(false) {
            ctx.drain(items, &error);
        }
    };
    loop {
        // Fill the window; block only when nothing is in flight.
        while input_open && in_flight.len() < window {
            match ctx.input.pop(in_flight.is_empty()) {
                Pop::Empty => break,
                Pop::Closed => input_open = false,
                Pop::Failed(items, error) => {
                    ctx.drain(items, &error);
                    for (item, _ticket) in in_flight.drain(..) {
                        ctx.shared.finish(&item.cell, Err(error.clone()));
                    }
                    return;
                }
                Pop::Item(item) => {
                    item.cell
                        .set_position(TicketState::Running { stage: ctx.index });
                    match (encode)(&item.payload).and_then(|batch| pool.submit(batch)) {
                        Ok(ticket) => in_flight.push_back((item, ticket)),
                        Err(BackendError::QueueClosed) => {
                            stage_death(&ctx, &mut in_flight, Some(item));
                            return;
                        }
                        Err(e) => ctx.shared.finish(&item.cell, Err(ctx.stage_err(e))),
                    }
                }
            }
        }
        // Complete the oldest in-flight item, preserving stream order.
        let Some((item, ticket)) = in_flight.pop_front() else {
            if !input_open {
                ctx.close_downstream();
                return;
            }
            continue;
        };
        match ticket.wait() {
            Ok(reply) => {
                ctx.record_item(reply.service, item.entered.elapsed());
                match (decode)(&reply.result) {
                    Ok(outputs) => ctx.forward(item, outputs),
                    Err(e) => ctx.shared.finish(&item.cell, Err(ctx.stage_err(e))),
                }
            }
            Err(BackendError::QueueClosed) => {
                stage_death(&ctx, &mut in_flight, Some(item));
                return;
            }
            Err(e) => {
                ctx.record_item(Duration::ZERO, item.entered.elapsed());
                ctx.shared.finish(&item.cell, Err(ctx.stage_err(e)));
            }
        }
    }
}

/// What one stage deploys as: built before any thread spawns, so a
/// failing pool constructor aborts the whole build cleanly.
enum StageRunner {
    Host(HostStage),
    Macro {
        pool: Arc<ReplicaPool>,
        encode: EncodeFn,
        decode: DecodeFn,
        window: usize,
    },
}

/// A deployed dataflow pipeline: one thread per stage, bounded queues
/// between them, `submit(activation) -> ticket` at the front. See the
/// [module docs](crate::pipeline) for the full contract.
pub struct PipelineGraph {
    shared: Arc<PipeShared>,
    pools: Vec<Option<Arc<ReplicaPool>>>,
    handles: Vec<JoinHandle<()>>,
    names: Vec<String>,
    capacity: usize,
}

impl PipelineGraph {
    /// Deploys a spec: builds every macro stage's [`ReplicaPool`] (fail
    /// fast, before any stage thread starts), then spawns one stage
    /// thread per stage, chained by bounded queues of
    /// [`PipelinePolicy::capacity`] items.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::MalformedProgram`] for an empty spec, and
    /// any stage pool's own construction failure (already-built pools
    /// are torn down).
    pub fn build(
        spec: PipelineSpec,
        policy: PipelinePolicy,
    ) -> Result<PipelineGraph, BackendError> {
        if spec.is_empty() {
            return Err(BackendError::MalformedProgram {
                reason: "a pipeline needs at least one stage".into(),
            });
        }
        let capacity = policy.capacity.max(1);
        let names = spec.stage_names();
        // Build the fallible parts first: a failing pool constructor
        // must not leave orphan stage threads behind.
        let mut runners = Vec::with_capacity(spec.len());
        for stage in spec.stages {
            match stage {
                StageSpec::Host(host) => runners.push(StageRunner::Host(host)),
                StageSpec::Macro(m) => {
                    let replicas = m.policy.replicas.max(1);
                    let window = (replicas * 2).max(2);
                    let mut queue = m.policy.queue.clone();
                    // The inter-stage credit must stay the binding
                    // bound: the stage pool itself never rejects the
                    // window's submissions.
                    queue.max_depth = queue.max_depth.max(capacity + window + 1);
                    let serve = ServePolicy::default()
                        .with_replicas(replicas)
                        .with_recovery(m.policy.recovery)
                        .with_queue(queue);
                    let recipes = (0..replicas).map(|_| Arc::clone(&m.recipe)).collect();
                    let pool = Arc::new(ReplicaPool::from_recipes(serve, m.ns, recipes)?);
                    runners.push(StageRunner::Macro {
                        pool,
                        encode: m.encode,
                        decode: m.decode,
                        window,
                    });
                }
            }
        }
        let queues: Vec<Arc<StageQueue>> = (0..runners.len())
            .map(|_| StageQueue::new(capacity))
            .collect();
        let mut stats = SessionStats::default();
        for (i, name) in names.iter().enumerate() {
            stats.init_stage(i, name);
        }
        let shared = Arc::new(PipeShared {
            queues: queues.clone(),
            stats: Mutex::new(stats),
            in_flight: AtomicUsize::new(0),
            started: Instant::now(),
            failure: Mutex::new(None),
        });
        let mut pools = Vec::with_capacity(runners.len());
        let mut handles = Vec::with_capacity(runners.len());
        for (i, runner) in runners.into_iter().enumerate() {
            let ctx = StageCtx {
                index: i,
                shared: Arc::clone(&shared),
                input: Arc::clone(&queues[i]),
                output: queues.get(i + 1).map(Arc::clone),
            };
            let builder = std::thread::Builder::new().name(format!("maddpipe-stage-{i}"));
            let handle = match runner {
                StageRunner::Host(host) => {
                    pools.push(None);
                    builder.spawn(move || host_loop(ctx, host))
                }
                StageRunner::Macro {
                    pool,
                    encode,
                    decode,
                    window,
                } => {
                    pools.push(Some(Arc::clone(&pool)));
                    builder.spawn(move || macro_loop(ctx, pool, encode, decode, window))
                }
            }
            .expect("the host can spawn a stage thread");
            handles.push(handle);
        }
        Ok(PipelineGraph {
            shared,
            pools,
            handles,
            names,
            capacity,
        })
    }

    /// Submits one request (the first stage's input activation);
    /// returns immediately with a ticket.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QueueFull`] when the intake queue is at
    /// [`PipelinePolicy::capacity`] (backpressure — wait on an
    /// outstanding ticket and retry), [`BackendError::QueueClosed`]
    /// after [`close`](PipelineGraph::close), and the stored
    /// [`BackendError::Stage`] after a stage death.
    pub fn submit(&self, input: Vec<f32>) -> Result<PipelineTicket, BackendError> {
        if let Some(error) = self.shared.failure() {
            return Err(error);
        }
        let cell = PipeCell::new();
        let now = Instant::now();
        let item = PipeItem {
            payload: input,
            cell: Arc::clone(&cell),
            submitted: now,
            entered: now,
        };
        // Pre-count, so a racing completion can never underflow.
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        match self.shared.queues[0].try_submit(item) {
            Ok(()) => {
                let depth = self.shared.in_flight.load(Ordering::SeqCst) as u64;
                self.shared.stats().record_queue_depth(depth);
                Ok(PipelineTicket { cell })
            }
            Err(e) => {
                self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Requests accepted and not yet resolved, graph-wide, right now.
    pub fn depth(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// The stage names, in order.
    pub fn stage_names(&self) -> &[String] {
        &self.names
    }

    /// The per-hop queue capacity the graph was deployed with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the aggregate statistics: per-stage profiles
    /// (items, busy time, residence percentiles, retries/respawns,
    /// queue high-water marks), end-to-end images and latency
    /// percentiles, and the summed [`PoolHealth`](crate::pool::PoolHealth)
    /// over every stage pool.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.shared.stats().clone();
        stats.note_pipeline(self.shared.started.elapsed());
        let mut health = crate::pool::PoolHealth::default();
        for (i, pool) in self.pools.iter().enumerate() {
            if let Some(pool) = pool {
                let pool_stats = pool.stats();
                let pool_health = pool.health();
                stats.set_stage_recovery(i, pool_stats.retries(), pool_health.restarts);
                let cache = pool_stats.cache();
                if cache != crate::cache::CacheStats::default() {
                    // The stage pool's aggregate cache view, both on the
                    // stage profile and as a top-level source slot (the
                    // base snapshot never carries cache counters, so the
                    // per-call fold stays cumulative, not double-counted).
                    stats.set_stage_cache(i, cache);
                    stats.note_cache(i, cache);
                }
                health.healthy += pool_health.healthy;
                health.quarantined += pool_health.quarantined;
                health.restarts += pool_health.restarts;
            }
            stats.set_stage_queue_high_water(i, self.shared.queues[i].high_water());
        }
        stats.note_pool_health(health);
        stats
    }

    /// Stops intake (submissions answer [`BackendError::QueueClosed`])
    /// while the stages drain everything already accepted. Does not
    /// block; pair with [`shutdown`](PipelineGraph::shutdown) or ticket
    /// waits to observe the drain finishing. Idempotent.
    pub fn close(&self) {
        self.shared.queues[0].close();
    }

    /// Closes the graph, waits for every stage to drain (every accepted
    /// ticket resolves), tears the stage pools down, and returns the
    /// final statistics.
    pub fn shutdown(mut self) -> SessionStats {
        self.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let stats = self.stats();
        // The stage threads are gone: each Arc is now unique and the
        // pool's own Drop drains its replicas.
        self.pools.clear();
        stats
    }
}

impl core::fmt::Debug for PipelineGraph {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PipelineGraph")
            .field("stages", &self.names)
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl Drop for PipelineGraph {
    fn drop(&mut self) {
        self.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_spec_is_rejected() {
        let err = PipelineGraph::build(PipelineSpec::new(), PipelinePolicy::default()).unwrap_err();
        assert!(
            matches!(err, BackendError::MalformedProgram { .. }),
            "{err}"
        );
    }

    #[test]
    fn policies_clamp_and_build() {
        assert_eq!(PipelinePolicy::default().capacity, 8);
        assert_eq!(PipelinePolicy::default().with_capacity(0).capacity, 1);
        let policy = StagePolicy::default()
            .with_replicas(3)
            .with_recovery(RecoveryPolicy::none())
            .with_queue(QueuePolicy::default().with_max_batch(16));
        assert_eq!(policy.replicas, 3);
        assert_eq!(policy.queue.max_batch, 16);
        assert_eq!(
            StagePolicy::default().queue.max_linger,
            Duration::ZERO,
            "stage pools do not linger by default"
        );
    }

    #[test]
    fn a_host_only_graph_serves_in_order() {
        let spec = PipelineSpec::new()
            .host("double", |x: Vec<f32>| {
                Ok(x.into_iter().map(|v| v * 2.0).collect())
            })
            .host("sum", |x: Vec<f32>| Ok(vec![x.iter().sum()]));
        let trace = spec.reference_trace(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(trace, vec![vec![2.0, 4.0, 6.0], vec![12.0]]);
        let pipe = PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(4)).unwrap();
        assert_eq!(pipe.stage_names(), ["double", "sum"]);
        // A burst larger than the intake credit: QueueFull is the typed
        // "try again" backpressure signal, not a failure.
        let tickets: Vec<PipelineTicket> = (0..8)
            .map(|i| loop {
                match pipe.submit(vec![i as f32; 3]) {
                    Ok(ticket) => break ticket,
                    Err(BackendError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected intake error: {e}"),
                }
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let reply = ticket.wait().unwrap();
            assert_eq!(reply.outputs, vec![i as f32 * 6.0]);
        }
        assert_eq!(pipe.depth(), 0, "every ticket resolved");
        let stats = pipe.shutdown();
        assert_eq!(stats.images(), 8);
        assert_eq!(stats.stage_profiles()[0].items(), 8);
        assert_eq!(stats.stage_profiles()[1].items(), 8);
        assert!(stats.p99_image_latency().is_some());
    }

    #[test]
    fn a_failing_host_closure_costs_only_its_own_item() {
        let spec = PipelineSpec::new().host("picky", |x: Vec<f32>| {
            if x[0] < 0.0 {
                Err(BackendError::EmptyBatch)
            } else {
                Ok(x)
            }
        });
        let pipe = PipelineGraph::build(spec, PipelinePolicy::default()).unwrap();
        let bad = pipe.submit(vec![-1.0]).unwrap();
        let good = pipe.submit(vec![1.0]).unwrap();
        let err = bad.wait().unwrap_err();
        assert!(
            matches!(
                &err,
                BackendError::Stage { stage: 0, source } if **source == BackendError::EmptyBatch
            ),
            "{err:?}"
        );
        assert_eq!(good.wait().unwrap().outputs, vec![1.0]);
        pipe.shutdown();
    }

    #[test]
    fn a_panicking_host_closure_is_typed_not_fatal() {
        let spec = PipelineSpec::new().host("explosive", |x: Vec<f32>| {
            assert!(x[0] >= 0.0, "injected panic");
            Ok(x)
        });
        let pipe = PipelineGraph::build(spec, PipelinePolicy::default()).unwrap();
        let err = pipe.submit(vec![-1.0]).unwrap().wait().unwrap_err();
        assert!(
            matches!(
                &err,
                BackendError::Stage { stage: 0, source } if **source == BackendError::ReplicaPanicked
            ),
            "{err:?}"
        );
        // The stage thread survived its item's panic.
        assert_eq!(
            pipe.submit(vec![2.0]).unwrap().wait().unwrap().outputs,
            [2.0]
        );
        pipe.shutdown();
    }

    #[test]
    fn close_rejects_new_work_but_drains_accepted_work() {
        let spec = PipelineSpec::new().host("id", Ok);
        let pipe = PipelineGraph::build(spec, PipelinePolicy::default()).unwrap();
        let accepted = pipe.submit(vec![5.0]).unwrap();
        pipe.close();
        assert_eq!(
            pipe.submit(vec![6.0]).unwrap_err(),
            BackendError::QueueClosed
        );
        assert_eq!(accepted.wait().unwrap().outputs, vec![5.0]);
        pipe.shutdown();
    }

    #[test]
    fn ticket_probes_report_position_and_poll_hands_back() {
        let spec = PipelineSpec::new().host("slow", |x: Vec<f32>| {
            std::thread::sleep(Duration::from_millis(20));
            Ok(x)
        });
        let pipe = PipelineGraph::build(spec, PipelinePolicy::default()).unwrap();
        let first = pipe.submit(vec![1.0]).unwrap();
        let second = pipe.submit(vec![2.0]).unwrap();
        // The probe places the stuck request at a concrete stage.
        let stuck = second.wait_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(stuck.state().stage(), Some(0), "{:?}", stuck.state());
        let polled = match stuck.poll() {
            Err(ticket) => ticket, // still in flight — hands itself back
            Ok(reply) => panic!("resolved implausibly fast: {reply:?}"),
        };
        assert_eq!(first.wait().unwrap().outputs, vec![1.0]);
        let reply = polled.wait().unwrap();
        assert_eq!(reply.outputs, vec![2.0]);
        assert!(reply.latency >= Duration::from_millis(20));
        pipe.shutdown();
    }
}
