//! Property tests pinning [`ShardPlan`] to the geometry it mirrors.
//!
//! The serving plan and the CNN mapping describe the *same* partition of
//! a layer's output channels from two sides: `ShardPlan::for_layer` says
//! which decoder chains each macro instance owns,
//! `ConvMapping::sharded` says which sub-layer each macro instance
//! computes. These properties hold them together for arbitrary layer
//! shapes and macro widths, and pin the structural invariants of
//! `ShardPlan::even` that the sharded backend's stitching relies on:
//! contiguous ranges, no empty shard, full coverage of every chain.

use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::MacroProgram;
use maddpipe_core::mapping::{ConvMapping, ConvShape};
use maddpipe_runtime::plan::ShardPlan;
use maddpipe_runtime::BackendError;
use proptest::prelude::*;

proptest! {
    /// `ShardPlan::for_layer` assigns shard `s` exactly the output
    /// channels of the `s`-th sub-layer of `ConvMapping::sharded`, in
    /// the same order — and every sub-layer fits one macro
    /// (`tiles_out == 1`), which is the whole point of sharding.
    #[test]
    fn for_layer_matches_the_conv_mapping_tiling(
        in_channels in 1usize..=48,
        out_channels in 1usize..=96,
        out_h in 1usize..=6,
        out_w in 1usize..=6,
        ndec in 1usize..=24,
        ns in 1usize..=8,
    ) {
        let cfg = MacroConfig::new(ndec, ns);
        let shape = ConvShape::new(in_channels, out_channels, out_h, out_w);
        let plan = ShardPlan::for_layer(&shape, &cfg);
        let shards = ConvMapping::sharded(shape, &cfg);
        prop_assert_eq!(plan.shards(), shards.len(), "one shard per kernel tile");
        let mut start = 0usize;
        for (s, (sub, mapping)) in shards.iter().enumerate() {
            prop_assert_eq!(plan.widths()[s], sub.out_channels);
            prop_assert_eq!(plan.range(s), start..start + sub.out_channels);
            prop_assert_eq!(mapping.tiles_out, 1, "each shard fits one macro");
            prop_assert!(sub.out_channels <= cfg.ndec);
            start += sub.out_channels;
        }
        prop_assert_eq!(start, shape.out_channels, "tiles cover the layer");
        prop_assert_eq!(plan.out_channels(), out_channels);
    }

    /// `ShardPlan::even` invariants for every valid `(chains, shards)`
    /// pair: non-empty near-equal widths, contiguous back-to-back
    /// ranges, and full coverage — and `split` carries the partition
    /// onto a program so each shard owns exactly its chains' LUT rows.
    #[test]
    fn even_plans_are_contiguous_nonempty_and_cover_all_chains(
        out_channels in 1usize..=64,
        shards in 1usize..=12,
    ) {
        let shards = shards.min(out_channels); // keep the pair valid
        let plan = ShardPlan::even(out_channels, shards).unwrap();
        prop_assert_eq!(plan.shards(), shards);
        // Non-empty and balanced: widths never differ by more than one,
        // and the wider shards come first.
        let widths = plan.widths();
        for &w in widths {
            prop_assert!(w >= 1, "no shard may own zero chains");
        }
        let (min, max) = (
            *widths.iter().min().unwrap(),
            *widths.iter().max().unwrap(),
        );
        prop_assert!(max - min <= 1, "widths {:?} differ by more than 1", widths);
        prop_assert!(
            widths.windows(2).all(|w| w[0] >= w[1]),
            "remainder chains must go to the leading shards: {:?}",
            widths
        );
        // Contiguous and covering: ranges chain back to back over all
        // channels, so every decoder chain has exactly one owner.
        let mut next = 0usize;
        for s in 0..plan.shards() {
            let range = plan.range(s);
            prop_assert_eq!(range.start, next, "shard {} must start where {} ended", s, s.wrapping_sub(1));
            prop_assert!(!range.is_empty());
            next = range.end;
        }
        prop_assert_eq!(next, out_channels, "ranges must cover every chain");
        prop_assert_eq!(plan.out_channels(), out_channels);
        // The partition carries onto a program: one sub-program per
        // shard, each exactly as wide as its range.
        let program = MacroProgram::random(out_channels, 1, out_channels as u64);
        let subs = plan.split(&program).unwrap();
        prop_assert_eq!(subs.len(), shards);
        for (sub, &width) in subs.iter().zip(widths) {
            prop_assert_eq!(sub.ndec(), width);
        }
    }

    /// The two constructions agree wherever both apply: a layer whose
    /// kernel count divides evenly across macros induces the same plan
    /// as the direct even split.
    #[test]
    fn layer_plans_and_even_plans_agree_on_exact_tilings(
        tiles in 1usize..=6,
        ndec in 1usize..=16,
    ) {
        let cfg = MacroConfig::new(ndec, 4);
        let shape = ConvShape::new(8, tiles * ndec, 2, 2);
        let layer = ShardPlan::for_layer(&shape, &cfg);
        let even = ShardPlan::even(tiles * ndec, tiles).unwrap();
        prop_assert_eq!(layer, even);
    }
}

/// The degenerate inputs stay typed errors (not panics), whatever the
/// magnitude.
#[test]
fn invalid_even_plans_are_typed_errors() {
    assert!(matches!(
        ShardPlan::even(16, 0),
        Err(BackendError::InvalidShardPlan { .. })
    ));
    assert!(matches!(
        ShardPlan::even(3, 4),
        Err(BackendError::InvalidShardPlan { .. })
    ));
    assert!(matches!(
        ShardPlan::even(0, 0),
        Err(BackendError::InvalidShardPlan { .. })
    ));
}
