//! CNN layers with forward and backward passes.
//!
//! Convolutions run through explicit **im2col**: every output pixel
//! becomes one row of patches laid out *channel-major* — 9 contiguous
//! values per input channel — which is exactly the subvector layout the
//! accelerator's compute blocks consume (paper Fig. 3). The same patch
//! matrix therefore drives both the float forward pass and the MADDNESS
//! substitution.

use crate::tensor::Tensor4;
use maddpipe_amm::linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extracts 3×3/pad-1 patches: returns an `(n·h·w) × (c·9)` matrix whose
/// rows are channel-major patches.
pub fn im2col3x3(x: &Tensor4) -> Mat {
    let (n, c, h, w) = x.shape();
    let mut out = Mat::zeros(n * h * w, c * 9);
    for img in 0..n {
        for oy in 0..h {
            for ox in 0..w {
                let row = (img * h + oy) * w + ox;
                let out_row = out.row_mut(row);
                for ch in 0..c {
                    let plane = x.plane(img, ch);
                    for ky in 0..3usize {
                        for kx in 0..3usize {
                            let iy = oy as isize + ky as isize - 1;
                            let ix = ox as isize + kx as isize - 1;
                            let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                plane[iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                            out_row[ch * 9 + ky * 3 + kx] = v;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Scatters patch-gradients back to an input-shaped tensor (the adjoint of
/// [`im2col3x3`]).
pub fn col2im3x3(grad_patches: &Mat, n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
    assert_eq!(grad_patches.rows(), n * h * w, "row count mismatch");
    assert_eq!(grad_patches.cols(), c * 9, "column count mismatch");
    let mut out = Tensor4::zeros(n, c, h, w);
    for img in 0..n {
        for oy in 0..h {
            for ox in 0..w {
                let row = grad_patches.row((img * h + oy) * w + ox);
                for ch in 0..c {
                    for ky in 0..3usize {
                        for kx in 0..3usize {
                            let iy = oy as isize + ky as isize - 1;
                            let ix = ox as isize + kx as isize - 1;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                out[(img, ch, iy as usize, ix as usize)] +=
                                    row[ch * 9 + ky * 3 + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// How a convolution executes its patch-matrix product.
///
/// The float path is exact; the other two reproduce the deployed
/// accelerators: [`ConvExec::Digital`] is the proposed macro / Stella Nera
/// algorithm (INT8 BDT MADDNESS), [`ConvExec::Analog`] the time-domain
/// Manhattan encoder of \[21\] with delay noise.
#[derive(Debug, Clone, Default)]
pub enum ConvExec {
    /// Exact float matmul (training and the float baseline).
    #[default]
    Float,
    /// MADDNESS INT8 LUT path (the proposed accelerator's arithmetic).
    Digital(maddpipe_amm::MaddnessMatmul),
    /// Noisy analog Manhattan-encoder path.
    Analog(crate::amm_layer::AnalogAmm),
}

/// 3×3 same-padding convolution (stride 1).
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Weights as a `(c_in·9) × c_out` matrix (im2col layout).
    pub weight: Mat,
    /// Weight gradient, same shape.
    pub grad: Mat,
    /// Execution engine (float / MADDNESS / analog).
    pub exec: ConvExec,
    in_channels: usize,
    out_channels: usize,
    cache_patches: Option<Mat>,
    cache_shape: (usize, usize, usize, usize),
}

impl Conv2d {
    /// Creates a He-initialised convolution.
    pub fn new(in_channels: usize, out_channels: usize, seed: u64) -> Conv2d {
        let fan_in = (in_channels * 9) as f32;
        let std = (2.0 / fan_in).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weight = Mat::zeros(in_channels * 9, out_channels);
        for v in weight.data_mut() {
            *v = (rng.gen::<f32>() * 2.0 - 1.0) * std * 1.73;
        }
        Conv2d {
            grad: Mat::zeros(in_channels * 9, out_channels),
            weight,
            exec: ConvExec::Float,
            in_channels,
            out_channels,
            cache_patches: None,
            cache_shape: (0, 0, 0, 0),
        }
    }

    /// Takes the patch matrix cached by the most recent forward pass —
    /// used as MADDNESS calibration data.
    pub fn take_cached_patches(&mut self) -> Option<Mat> {
        self.cache_patches.take()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert_eq!(c, self.in_channels, "channel mismatch");
        let patches = im2col3x3(x);
        let y = match &mut self.exec {
            ConvExec::Float => patches.matmul(&self.weight),
            ConvExec::Digital(op) => op.matmul(&patches),
            ConvExec::Analog(op) => op.apply(&patches),
        };
        self.cache_patches = Some(patches);
        self.cache_shape = (n, c, h, w);
        mat_to_tensor(&y, n, self.out_channels, h, w)
    }

    /// Backward pass: accumulates the weight gradient and returns the
    /// input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_y: &Tensor4) -> Tensor4 {
        assert!(
            matches!(self.exec, ConvExec::Float),
            "cannot backpropagate through a substituted (inference-only) convolution"
        );
        let patches = self
            .cache_patches
            .as_ref()
            .expect("backward before forward");
        let (n, c, h, w) = self.cache_shape;
        let gy = tensor_to_mat(grad_y);
        self.grad = patches.transpose().matmul(&gy);
        let gp = gy.matmul(&self.weight.transpose());
        col2im3x3(&gp, n, c, h, w)
    }

    /// SGD step with momentum buffer owned by the caller.
    pub fn step(&mut self, lr: f32, momentum: f32, velocity: &mut Mat) {
        for ((w, g), v) in self
            .weight
            .data_mut()
            .iter_mut()
            .zip(self.grad.data())
            .zip(velocity.data_mut())
        {
            *v = momentum * *v + g;
            *w -= lr * *v;
        }
    }
}

/// Converts an `(n·h·w) × c_out` matrix to NCHW.
pub fn mat_to_tensor(m: &Mat, n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
    assert_eq!(m.rows(), n * h * w);
    assert_eq!(m.cols(), c);
    let mut out = Tensor4::zeros(n, c, h, w);
    for img in 0..n {
        for y in 0..h {
            for x in 0..w {
                let row = m.row((img * h + y) * w + x);
                for ch in 0..c {
                    out[(img, ch, y, x)] = row[ch];
                }
            }
        }
    }
    out
}

/// Converts NCHW to an `(n·h·w) × c` matrix (inverse of [`mat_to_tensor`]).
pub fn tensor_to_mat(t: &Tensor4) -> Mat {
    let (n, c, h, w) = t.shape();
    let mut out = Mat::zeros(n * h * w, c);
    for img in 0..n {
        for y in 0..h {
            for x in 0..w {
                let row = out.row_mut((img * h + y) * w + x);
                for (ch, slot) in row.iter_mut().enumerate() {
                    *slot = t[(img, ch, y, x)];
                }
            }
        }
    }
    out
}

/// Batch normalisation over N×H×W per channel.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Scale parameter γ.
    pub gamma: Vec<f32>,
    /// Shift parameter β.
    pub beta: Vec<f32>,
    /// γ gradient.
    pub grad_gamma: Vec<f32>,
    /// β gradient.
    pub grad_beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
    eps: f32,
    momentum: f32,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor4,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates an identity-initialised batch norm for `channels`.
    pub fn new(channels: usize) -> BatchNorm2d {
        BatchNorm2d {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
            eps: 1e-5,
            momentum: 0.1,
        }
    }

    /// Overrides the running-statistics momentum. With `momentum = 1.0` a
    /// single training-mode forward pass sets the running statistics to
    /// the batch statistics exactly — the post-substitution BN
    /// recalibration relies on this.
    pub fn set_stat_momentum(&mut self, momentum: f32) {
        self.momentum = momentum.clamp(0.0, 1.0);
    }

    /// Forward pass; `training` selects batch statistics vs running ones.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        let count = (n * h * w) as f32;
        let mut out = x.zeros_like();
        let mut x_hat = x.zeros_like();
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if training {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for img in 0..n {
                    for &v in x.plane(img, ch) {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / count as f64) as f32;
                let var = (sq / count as f64) as f32 - mean * mean;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var.max(0.0))
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            for img in 0..n {
                for y in 0..h {
                    for xx in 0..w {
                        let xh = (x[(img, ch, y, xx)] - mean) * inv_std;
                        x_hat[(img, ch, y, xx)] = xh;
                        out[(img, ch, y, xx)] = self.gamma[ch] * xh + self.beta[ch];
                    }
                }
            }
        }
        if training {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
            });
        }
        out
    }

    /// Backward pass (training mode only).
    ///
    /// # Panics
    ///
    /// Panics if called without a cached training forward.
    pub fn backward(&mut self, grad_y: &Tensor4) -> Tensor4 {
        let cache = self.cache.as_ref().expect("backward before forward");
        let (n, c, h, w) = grad_y.shape();
        let count = (n * h * w) as f32;
        let mut out = grad_y.zeros_like();
        for ch in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for img in 0..n {
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_y[(img, ch, y, x)] as f64;
                        sum_dy += dy;
                        sum_dy_xhat += dy * cache.x_hat[(img, ch, y, x)] as f64;
                    }
                }
            }
            self.grad_beta[ch] = sum_dy as f32;
            self.grad_gamma[ch] = sum_dy_xhat as f32;
            let k = self.gamma[ch] * cache.inv_std[ch] / count;
            for img in 0..n {
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_y[(img, ch, y, x)];
                        let xh = cache.x_hat[(img, ch, y, x)];
                        out[(img, ch, y, x)] =
                            k * (count * dy - sum_dy as f32 - xh * sum_dy_xhat as f32);
                    }
                }
            }
        }
        out
    }

    /// SGD step on γ/β.
    pub fn step(&mut self, lr: f32) {
        for (g, d) in self.gamma.iter_mut().zip(&self.grad_gamma) {
            *g -= lr * d;
        }
        for (b, d) in self.beta.iter_mut().zip(&self.grad_beta) {
            *b -= lr * d;
        }
    }
}

/// ReLU with cached mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU.
    pub fn new() -> Relu {
        Relu::default()
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        let mut out = x.clone();
        for v in out.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    /// Backward pass.
    pub fn backward(&self, grad_y: &Tensor4) -> Tensor4 {
        let mut out = grad_y.clone();
        for (g, &m) in out.data_mut().iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
        out
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_shape: (usize, usize, usize, usize),
}

impl MaxPool2 {
    /// Creates a pool layer.
    pub fn new() -> MaxPool2 {
        MaxPool2::default()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics on odd spatial dimensions.
    pub fn forward(&mut self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert!(h % 2 == 0 && w % 2 == 0, "pooling needs even dimensions");
        let mut out = Tensor4::zeros(n, c, h / 2, w / 2);
        self.argmax = vec![0; out.len()];
        self.in_shape = x.shape();
        let mut idx = 0;
        for img in 0..n {
            for ch in 0..c {
                for oy in 0..h / 2 {
                    for ox in 0..w / 2 {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_at = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let (iy, ix) = (oy * 2 + dy, ox * 2 + dx);
                                let v = x[(img, ch, iy, ix)];
                                if v > best {
                                    best = v;
                                    best_at = ((img * c + ch) * h + iy) * w + ix;
                                }
                            }
                        }
                        out[(img, ch, oy, ox)] = best;
                        self.argmax[idx] = best_at;
                        idx += 1;
                    }
                }
            }
        }
        out
    }

    /// Backward pass: routes gradients to the argmax positions.
    pub fn backward(&self, grad_y: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = self.in_shape;
        let mut out = Tensor4::zeros(n, c, h, w);
        for (i, &g) in grad_y.data().iter().enumerate() {
            out.data_mut()[self.argmax[i]] += g;
        }
        out
    }
}

/// Fully-connected layer on flattened features.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `in × out`.
    pub weight: Mat,
    /// Bias, length `out`.
    pub bias: Vec<f32>,
    /// Weight gradient.
    pub grad_w: Mat,
    /// Bias gradient.
    pub grad_b: Vec<f32>,
    cache_x: Option<Mat>,
}

impl Linear {
    /// Creates a He-initialised linear layer.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Linear {
        let std = (2.0 / inputs as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weight = Mat::zeros(inputs, outputs);
        for v in weight.data_mut() {
            *v = (rng.gen::<f32>() * 2.0 - 1.0) * std;
        }
        Linear {
            grad_w: Mat::zeros(inputs, outputs),
            grad_b: vec![0.0; outputs],
            bias: vec![0.0; outputs],
            weight,
            cache_x: None,
        }
    }

    /// Forward on an `n × in` matrix.
    pub fn forward(&mut self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.weight);
        for r in 0..y.rows() {
            for (c, b) in self.bias.iter().enumerate() {
                y[(r, c)] += b;
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_y: &Mat) -> Mat {
        let x = self.cache_x.as_ref().expect("backward before forward");
        self.grad_w = x.transpose().matmul(grad_y);
        for c in 0..grad_y.cols() {
            self.grad_b[c] = (0..grad_y.rows()).map(|r| grad_y[(r, c)]).sum();
        }
        grad_y.matmul(&self.weight.transpose())
    }

    /// SGD step.
    pub fn step(&mut self, lr: f32) {
        for (w, g) in self.weight.data_mut().iter_mut().zip(self.grad_w.data()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_b) {
            *b -= lr * g;
        }
    }
}

/// Softmax cross-entropy: returns `(loss, grad_logits)`.
///
/// # Panics
///
/// Panics if a label is out of range.
pub fn softmax_cross_entropy(logits: &Mat, labels: &[usize]) -> (f32, Mat) {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let n = logits.rows();
    let classes = logits.cols();
    let mut grad = Mat::zeros(n, classes);
    let mut loss = 0.0f64;
    for r in 0..n {
        assert!(labels[r] < classes, "label {} out of range", labels[r]);
        let row = logits.row(r);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        loss -= (exps[labels[r]] / sum).ln();
        for c in 0..classes {
            let p = (exps[c] / sum) as f32;
            grad[(r, c)] = (p - if c == labels[r] { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((loss / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_from(shape: (usize, usize, usize, usize), f: impl Fn(usize) -> f32) -> Tensor4 {
        let (n, c, h, w) = shape;
        Tensor4::from_vec(n, c, h, w, (0..n * c * h * w).map(f).collect())
    }

    #[test]
    fn im2col_identity_kernel_recovers_input() {
        // A kernel that picks the centre element reproduces the input.
        let x = tensor_from((1, 2, 4, 4), |i| i as f32);
        let mut conv = Conv2d::new(2, 2, 0);
        for v in conv.weight.data_mut() {
            *v = 0.0;
        }
        // Centre of channel 0 → out 0; centre of channel 1 → out 1.
        conv.weight[(4, 0)] = 1.0;
        conv.weight[(9 + 4, 1)] = 1.0;
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn im2col_rows_are_channel_major() {
        let x = tensor_from((1, 2, 3, 3), |i| i as f32);
        let p = im2col3x3(&x);
        // Centre pixel (1,1): its row holds channel 0's full 3×3 plane then
        // channel 1's.
        let row = p.row(3 + 1); // image 0, pixel (1, 1) of the 3×3 map
        assert_eq!(&row[..9], &[0., 1., 2., 3., 4., 5., 6., 7., 8.]);
        assert_eq!(&row[9..], &[9., 10., 11., 12., 13., 14., 15., 16., 17.]);
    }

    #[test]
    fn conv_gradient_matches_numerical_difference() {
        let x = tensor_from((1, 1, 3, 3), |i| (i as f32 * 0.7).sin());
        let mut conv = Conv2d::new(1, 1, 3);
        // Scalar loss = sum of outputs; analytic dL/dW = patchesᵀ · 1.
        let y = conv.forward(&x);
        let ones = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let _ = conv.backward(&ones);
        let analytic = conv.grad.clone();
        let eps = 1e-3;
        for k in [0usize, 4, 8] {
            let mut plus = conv.clone();
            plus.weight.data_mut()[k] += eps;
            let y_plus: f32 = plus.forward(&x).data().iter().sum();
            let y_base: f32 = y.data().iter().sum();
            let numeric = (y_plus - y_base) / eps;
            assert!(
                (numeric - analytic.data()[k]).abs() < 1e-2,
                "dW[{k}]: numeric {numeric} vs analytic {}",
                analytic.data()[k]
            );
        }
    }

    #[test]
    fn conv_input_gradient_matches_numerical_difference() {
        let x = tensor_from((1, 1, 3, 3), |i| (i as f32 * 0.31).cos());
        let mut conv = Conv2d::new(1, 1, 5);
        let _ = conv.forward(&x);
        let ones = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let gx = conv.backward(&ones);
        let eps = 1e-3;
        for k in [0usize, 4, 7] {
            let mut xp = x.clone();
            xp.data_mut()[k] += eps;
            let y_plus: f32 = conv.forward(&xp).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[k] -= eps;
            let y_minus: f32 = conv.forward(&xm).data().iter().sum();
            let numeric = (y_plus - y_minus) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[k]).abs() < 1e-2,
                "dX[{k}]: numeric {numeric} vs analytic {}",
                gx.data()[k]
            );
        }
    }

    #[test]
    fn batchnorm_normalises_and_backprops() {
        let x = tensor_from((2, 1, 2, 2), |i| i as f32 * 3.0 - 5.0);
        let mut bn = BatchNorm2d::new(1);
        let y = bn.forward(&x, true);
        let mean: f32 = y.data().iter().sum::<f32>() / 8.0;
        let var: f32 = y.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
        // Gradient sanity: constant upstream gradient yields ~zero input
        // gradient (normalisation removes the mean shift).
        let g = bn.backward(&Tensor4::from_vec(2, 1, 2, 2, vec![1.0; 8]));
        assert!(g.data().iter().all(|v| v.abs() < 1e-4), "{:?}", g.data());
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let x = tensor_from((4, 1, 2, 2), |i| i as f32);
        let mut bn = BatchNorm2d::new(1);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y_eval = bn.forward(&x, false);
        let mean: f32 = y_eval.data().iter().sum::<f32>() / y_eval.len() as f32;
        assert!(mean.abs() < 0.1, "eval mean {mean}");
    }

    #[test]
    fn relu_masks_consistently() {
        let x = tensor_from((1, 1, 2, 2), |i| i as f32 - 1.5);
        let mut relu = Relu::new();
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 1.5]);
        let g = relu.backward(&Tensor4::from_vec(1, 1, 2, 2, vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_and_routes() {
        let x = tensor_from((1, 1, 2, 2), |i| [1.0, 5.0, 3.0, 2.0][i]);
        let mut pool = MaxPool2::new();
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[5.0]);
        let g = pool.backward(&Tensor4::from_vec(1, 1, 1, 1, vec![2.0]));
        assert_eq!(g.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn linear_gradcheck() {
        let x = Mat::from_rows(&[&[0.5, -1.0, 2.0]]);
        let mut lin = Linear::new(3, 2, 9);
        let y = lin.forward(&x);
        let gy = Mat::from_rows(&[&[1.0, 1.0]]);
        let gx = lin.backward(&gy);
        let eps = 1e-3;
        // Input gradient check on element 1.
        let mut xp = x.clone();
        xp[(0, 1)] += eps;
        let yp: f32 = lin.forward(&xp).data().iter().sum();
        let base: f32 = y.data().iter().sum();
        let numeric = (yp - base) / eps;
        assert!((numeric - gx[(0, 1)]).abs() < 1e-2);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let logits = Mat::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 0.0, 0.0]]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!(loss > 0.0);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
        // Perfect prediction has near-zero loss.
        let confident = Mat::from_rows(&[&[100.0, 0.0, 0.0]]);
        let (l2, _) = softmax_cross_entropy(&confident, &[0]);
        assert!(l2 < 1e-3);
    }
}
