//! ResNet9 — the network of the paper's accuracy evaluation (Table II
//! reports ResNet9 on CIFAR-10 for all three accelerators).
//!
//! The architecture follows the widely-used "ResNet9 for CIFAR" recipe:
//! prep conv → conv+pool → residual → conv+pool → conv+pool → residual →
//! pool → linear. Width and input size are parameters so tests can run a
//! miniature instance while examples train a larger one.

use crate::layers::{softmax_cross_entropy, BatchNorm2d, Conv2d, Linear, MaxPool2, Relu};
use crate::tensor::Tensor4;
use maddpipe_amm::linalg::Mat;

/// Conv → BatchNorm → ReLU with an SGD momentum buffer.
#[derive(Debug, Clone)]
pub struct ConvBlock {
    /// The convolution (this is what MADDNESS substitution replaces).
    pub conv: Conv2d,
    /// Batch normalisation.
    pub bn: BatchNorm2d,
    relu: Relu,
    velocity: Mat,
}

impl ConvBlock {
    /// Creates a block.
    pub fn new(c_in: usize, c_out: usize, seed: u64) -> ConvBlock {
        ConvBlock {
            conv: Conv2d::new(c_in, c_out, seed),
            bn: BatchNorm2d::new(c_out),
            relu: Relu::new(),
            velocity: Mat::zeros(c_in * 9, c_out),
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let y = self.conv.forward(x);
        let y = self.bn.forward(&y, training);
        self.relu.forward(&y)
    }

    /// Backward pass.
    pub fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let g = self.relu.backward(grad);
        let g = self.bn.backward(&g);
        self.conv.backward(&g)
    }

    /// SGD step.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        self.conv.step(lr, momentum, &mut self.velocity);
        self.bn.step(lr);
    }
}

/// Two conv blocks with an identity skip connection.
#[derive(Debug, Clone)]
pub struct Residual {
    /// First block.
    pub a: ConvBlock,
    /// Second block.
    pub b: ConvBlock,
}

impl Residual {
    /// Creates a channel-preserving residual pair.
    pub fn new(channels: usize, seed: u64) -> Residual {
        Residual {
            a: ConvBlock::new(channels, channels, seed),
            b: ConvBlock::new(channels, channels, seed ^ 0x9E37),
        }
    }

    /// Forward: `x + b(a(x))`.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Tensor4 {
        let y = self.a.forward(x, training);
        let mut y = self.b.forward(&y, training);
        y.add_assign(x);
        y
    }

    /// Backward through both paths.
    pub fn backward(&mut self, grad: &Tensor4) -> Tensor4 {
        let mut g = self.b.backward(grad);
        g = self.a.backward(&g);
        g.add_assign(grad);
        g
    }

    /// SGD step.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        self.a.step(lr, momentum);
        self.b.step(lr, momentum);
    }
}

/// The ResNet9 classifier.
#[derive(Debug, Clone)]
pub struct ResNet9 {
    /// Prep block, 3 → w channels.
    pub prep: ConvBlock,
    /// Stage 1: w → 2w, then pool + residual.
    pub layer1: ConvBlock,
    pool1: MaxPool2,
    /// Stage 1 residual.
    pub res1: Residual,
    /// Stage 2: 2w → 4w, then pool.
    pub layer2: ConvBlock,
    pool2: MaxPool2,
    /// Stage 3: 4w → 8w, then pool + residual.
    pub layer3: ConvBlock,
    pool3: MaxPool2,
    /// Stage 3 residual.
    pub res3: Residual,
    pool4: MaxPool2,
    /// Classifier head.
    pub fc: Linear,
    logits_scale: f32,
    fc_spatial: usize,
    width: usize,
}

impl ResNet9 {
    /// Creates a ResNet9 with base width `width` for square inputs of
    /// `img_size` (must be a multiple of 16).
    ///
    /// # Panics
    ///
    /// Panics if `img_size` is not a positive multiple of 16.
    pub fn new(width: usize, img_size: usize, classes: usize, seed: u64) -> ResNet9 {
        assert!(
            img_size >= 16 && img_size.is_multiple_of(16),
            "image size must be a positive multiple of 16, got {img_size}"
        );
        let fc_spatial = img_size / 16;
        ResNet9 {
            prep: ConvBlock::new(3, width, seed),
            layer1: ConvBlock::new(width, 2 * width, seed + 1),
            pool1: MaxPool2::new(),
            res1: Residual::new(2 * width, seed + 2),
            layer2: ConvBlock::new(2 * width, 4 * width, seed + 3),
            pool2: MaxPool2::new(),
            layer3: ConvBlock::new(4 * width, 8 * width, seed + 4),
            pool3: MaxPool2::new(),
            res3: Residual::new(8 * width, seed + 5),
            pool4: MaxPool2::new(),
            fc: Linear::new(8 * width * fc_spatial * fc_spatial, classes, seed + 6),
            logits_scale: 0.125,
            fc_spatial,
            width,
        }
    }

    /// Base width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Forward pass producing logits.
    pub fn forward(&mut self, x: &Tensor4, training: bool) -> Mat {
        let y = self.prep.forward(x, training);
        let y = self.layer1.forward(&y, training);
        let y = self.pool1.forward(&y);
        let y = self.res1.forward(&y, training);
        let y = self.layer2.forward(&y, training);
        let y = self.pool2.forward(&y);
        let y = self.layer3.forward(&y, training);
        let y = self.pool3.forward(&y);
        let y = self.res3.forward(&y, training);
        let y = self.pool4.forward(&y);
        let flat = flatten(&y);
        let mut logits = self.fc.forward(&flat);
        for v in logits.data_mut() {
            *v *= self.logits_scale;
        }
        logits
    }

    /// Backward pass from logits gradient (as produced by
    /// [`softmax_cross_entropy`]).
    pub fn backward(&mut self, grad_logits: &Mat, batch: usize) {
        let mut g = grad_logits.clone();
        for v in g.data_mut() {
            *v *= self.logits_scale;
        }
        let g = self.fc.backward(&g);
        let g = unflatten(&g, batch, 8 * self.width, self.fc_spatial, self.fc_spatial);
        let g = self.pool4.backward(&g);
        let g = self.res3.backward(&g);
        let g = self.pool3.backward(&g);
        let g = self.layer3.backward(&g);
        let g = self.pool2.backward(&g);
        let g = self.layer2.backward(&g);
        let g = self.res1.backward(&g);
        let g = self.pool1.backward(&g);
        let g = self.layer1.backward(&g);
        let _ = self.prep.backward(&g);
    }

    /// One SGD step over every parameter.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        self.prep.step(lr, momentum);
        self.layer1.step(lr, momentum);
        self.res1.step(lr, momentum);
        self.layer2.step(lr, momentum);
        self.layer3.step(lr, momentum);
        self.res3.step(lr, momentum);
        self.fc.step(lr);
    }

    /// Mutable references to every convolution, prep-to-head order —
    /// the substitution points for MADDNESS.
    pub fn convs_mut(&mut self) -> Vec<&mut Conv2d> {
        vec![
            &mut self.prep.conv,
            &mut self.layer1.conv,
            &mut self.res1.a.conv,
            &mut self.res1.b.conv,
            &mut self.layer2.conv,
            &mut self.layer3.conv,
            &mut self.res3.a.conv,
            &mut self.res3.b.conv,
        ]
    }

    /// Mutable references to every batch-norm layer, prep-to-head order —
    /// the recalibration points after MADDNESS substitution.
    pub fn bns_mut(&mut self) -> Vec<&mut BatchNorm2d> {
        vec![
            &mut self.prep.bn,
            &mut self.layer1.bn,
            &mut self.res1.a.bn,
            &mut self.res1.b.bn,
            &mut self.layer2.bn,
            &mut self.layer3.bn,
            &mut self.res3.a.bn,
            &mut self.res3.b.bn,
        ]
    }

    /// Computes loss and gradient for a labelled batch (training helper).
    pub fn loss(&mut self, x: &Tensor4, labels: &[usize]) -> (f32, Mat) {
        let logits = self.forward(x, true);
        softmax_cross_entropy(&logits, labels)
    }
}

/// Flattens NCHW to `n × (c·h·w)`.
pub fn flatten(x: &Tensor4) -> Mat {
    let (n, c, h, w) = x.shape();
    let mut out = Mat::zeros(n, c * h * w);
    for img in 0..n {
        let row = out.row_mut(img);
        let start = img * c * h * w;
        row.copy_from_slice(&x.data()[start..start + c * h * w]);
    }
    out
}

/// Inverse of [`flatten`].
pub fn unflatten(m: &Mat, n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
    assert_eq!(m.rows(), n);
    assert_eq!(m.cols(), c * h * w);
    let mut data = Vec::with_capacity(n * c * h * w);
    for img in 0..n {
        data.extend_from_slice(m.row(img));
    }
    Tensor4::from_vec(n, c, h, w, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_batch(n: usize, size: usize, seed: u64) -> Tensor4 {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor4::from_vec(
            n,
            3,
            size,
            size,
            (0..n * 3 * size * size)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        )
    }

    #[test]
    fn forward_shapes() {
        let mut net = ResNet9::new(4, 16, 10, 1);
        let x = random_batch(2, 16, 2);
        let logits = net.forward(&x, false);
        assert_eq!((logits.rows(), logits.cols()), (2, 10));
    }

    #[test]
    fn one_training_step_reduces_loss_on_a_tiny_batch() {
        let mut net = ResNet9::new(4, 16, 4, 7);
        let x = random_batch(8, 16, 3);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let (loss0, grad) = net.loss(&x, &labels);
        net.backward(&grad, 8);
        net.step(0.05, 0.9);
        // A couple more steps: overfit the fixed batch.
        for _ in 0..6 {
            let (_, grad) = net.loss(&x, &labels);
            net.backward(&grad, 8);
            net.step(0.05, 0.9);
        }
        let (loss1, _) = net.loss(&x, &labels);
        assert!(
            loss1 < loss0,
            "training must reduce loss: {loss0} → {loss1}"
        );
    }

    #[test]
    fn residual_is_identity_plus_branch() {
        let mut res = Residual::new(2, 5);
        // Zero the convolutions: the residual becomes the identity (after
        // BN/ReLU of zeros = 0).
        for block in [&mut res.a, &mut res.b] {
            for v in block.conv.weight.data_mut() {
                *v = 0.0;
            }
        }
        let x = random_batch(1, 16, 9);
        let x2 = {
            // Build a 2-channel input from the 3-channel helper.
            let mut t = Tensor4::zeros(1, 2, 16, 16);
            t.data_mut().copy_from_slice(&x.data()[..2 * 256]);
            t
        };
        let y = res.forward(&x2, false);
        assert_eq!(y, x2, "zero branch ⇒ pure identity");
    }

    #[test]
    fn flatten_unflatten_round_trip() {
        let x = random_batch(3, 16, 11);
        let m = flatten(&x);
        let back = unflatten(&m, 3, 3, 16, 16);
        assert_eq!(back, x);
    }

    #[test]
    fn convs_mut_enumerates_all_eight() {
        let mut net = ResNet9::new(4, 16, 10, 1);
        assert_eq!(net.convs_mut().len(), 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn bad_img_size_rejected() {
        let _ = ResNet9::new(4, 20, 10, 1);
    }
}
