//! # maddpipe-nn
//!
//! The DNN substrate for the paper's accuracy evaluation: a small CNN
//! stack (tensors, conv/BN/ReLU/pool/linear with backprop), the ResNet9
//! architecture of Table II, a synthetic CIFAR-like dataset (see DESIGN.md
//! §2 for the substitution rationale), SGD training, and the MADDNESS
//! layer substitution that converts a trained float network into the
//! network each accelerator actually executes.
//!
//! ```no_run
//! use maddpipe_nn::prelude::*;
//!
//! let (train_set, test_set) = synthetic_cifar(32, 16, 16, 42);
//! let mut net = ResNet9::new(8, 16, 10, 7);
//! let stats = train(&mut net, &train_set, &TrainConfig::default());
//! println!("{stats}");
//! let float_acc = evaluate(&mut net, &test_set, 32);
//! let (calib, _) = train_set.batch(0, 128);
//! substitute_digital(&mut net, &calib, true).unwrap();
//! let amm_acc = evaluate(&mut net, &test_set, 32);
//! println!("float {float_acc:.3} vs MADDNESS {amm_acc:.3}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amm_layer;
pub mod data;
pub mod layers;
pub mod net;
pub mod network;
pub mod tensor;
pub mod train;

pub use amm_layer::{restore_float, substitute_analog, substitute_digital, AnalogAmm};
pub use data::{synthetic_cifar, Dataset};
pub use net::ResNet9;
pub use network::{LayerActivation, Network};
pub use tensor::Tensor4;
pub use train::{evaluate, train, TrainConfig, TrainStats};

/// Common imports.
pub mod prelude {
    pub use crate::amm_layer::{restore_float, substitute_analog, substitute_digital, AnalogAmm};
    pub use crate::data::{synthetic_cifar, Dataset};
    pub use crate::layers::{Conv2d, ConvExec};
    pub use crate::net::ResNet9;
    pub use crate::network::{LayerActivation, Network};
    pub use crate::tensor::Tensor4;
    pub use crate::train::{evaluate, train, TrainConfig, TrainStats};
}
