//! Inference networks that lower onto the serving runtime: a chain of
//! conv / host layers, a bit-exact host `forward`, a per-layer
//! activation trace for golden-testing, and the `Network →
//! PipelineSpec` lowering that deploys the whole network as one
//! streaming [`PipelineGraph`](maddpipe_runtime::pipeline::PipelineGraph).
//!
//! The layers here are *inference recipes*, not trainable modules (the
//! trainable stack lives in [`crate::layers`]/[`crate::net`]): each conv
//! layer is a [`MacroProgram`] — ns = input channels, ndec = output
//! kernels, one 3×3 patch per subvector, exactly the macro's geometry —
//! and each host layer is a small pure function (ReLU, 2×2 max-pool,
//! per-channel affine, a final linear head).
//!
//! The contract the pipeline tests pin: [`Network::forward`] and the
//! deployed pipeline share the *same* encode / decode / host-apply code
//! paths, and every macro backend is bit-identical to
//! [`MacroProgram::reference_output`] — so the streaming deployment's
//! logits are **bit-identical** to the host forward, whatever
//! [`BackendKind`] serves the conv stages.
//!
//! ```
//! use maddpipe_nn::network::Network;
//! use maddpipe_runtime::prelude::*;
//!
//! let net = Network::demo(7);
//! let image = Network::demo_image(7, net.input_len());
//! let logits = net.forward(&image).unwrap();
//! assert_eq!(logits.len(), 10);
//!
//! let spec = net
//!     .to_pipeline_spec(BackendKind::Functional { workers: 1 }, &StagePolicy::default())
//!     .unwrap();
//! let pipe = PipelineGraph::build(spec, PipelinePolicy::default()).unwrap();
//! let reply = pipe.submit(image).unwrap().wait().unwrap();
//! assert_eq!(reply.outputs, logits); // bit-identical, not approximately
//! pipe.shutdown();
//! ```

use maddpipe_amm::quant::QuantScale;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::MacroProgram;
use maddpipe_runtime::backend::BackendKind;
use maddpipe_runtime::batch::{BatchResult, TokenBatch};
use maddpipe_runtime::error::BackendError;
use maddpipe_runtime::pipeline::{HostStage, MacroStage, PipelineSpec, StagePolicy, StageSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `(channels, height, width)` of an activation tensor.
pub type Shape = (usize, usize, usize);

/// One layer's recipe plus its resolved shapes.
#[derive(Debug, Clone)]
struct Layer {
    name: String,
    in_shape: Shape,
    out_shape: Shape,
    kind: LayerKind,
}

#[derive(Debug, Clone)]
enum LayerKind {
    /// A 3×3, stride-1, pad-1 convolution executed on the macro:
    /// `program.ns()` input channels, `program.ndec()` output kernels.
    Conv {
        program: MacroProgram,
        /// Input quantisation into the macro's INT8 tokens.
        scale: QuantScale,
        /// Dequantisation of the macro's i16 accumulator outputs.
        out_scale: f32,
    },
    /// Elementwise `max(0, x)`.
    Relu,
    /// 2×2, stride-2 max pooling.
    MaxPool2,
    /// Per-channel `gain[c] * x + bias[c]` (a folded batch-norm).
    Affine { gain: Vec<f32>, bias: Vec<f32> },
    /// A dense head over the flattened activation: `W x + b`, rows of
    /// `weights` indexed by output.
    Linear {
        weights: Vec<Vec<f32>>,
        bias: Vec<f32>,
    },
}

/// One layer's captured activation in a [`Network::forward_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerActivation {
    /// The layer's name (`"{index}-{kind}"`).
    pub name: String,
    /// The layer's full output activation, flattened `(c, h, w)`.
    pub output: Vec<f32>,
}

/// A multi-layer inference network built for macro serving: conv layers
/// run as [`MacroProgram`]s, everything else as host math. See the
/// [module docs](crate::network) for the bit-identicality contract.
#[derive(Debug, Clone)]
pub struct Network {
    input: Shape,
    layers: Vec<Layer>,
}

impl Network {
    /// An empty network taking `(channels, height, width)` images.
    /// Chain layer builders onto it; each builder panics on a shape
    /// mismatch (construction bugs are programmer errors, matching the
    /// trainable stack's convention).
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(channels: usize, height: usize, width: usize) -> Network {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "input shape must be non-zero"
        );
        Network {
            input: (channels, height, width),
            layers: Vec::new(),
        }
    }

    fn current_shape(&self) -> Shape {
        self.layers.last().map_or(self.input, |l| l.out_shape)
    }

    fn push(&mut self, kind_name: &str, out_shape: Shape, kind: LayerKind) {
        let name = format!("{}-{kind_name}", self.layers.len());
        let in_shape = self.current_shape();
        self.layers.push(Layer {
            name,
            in_shape,
            out_shape,
            kind,
        });
    }

    /// Appends a 3×3 macro convolution: `program.ns()` must equal the
    /// current channel count; the output has `program.ndec()` channels
    /// at the same spatial size (stride 1, pad 1). `scale` quantises
    /// the input activation into INT8 tokens; `out_scale` dequantises
    /// the macro's i16 accumulator back to floats.
    ///
    /// # Panics
    ///
    /// Panics when `program.ns()` does not match the incoming channels.
    #[must_use]
    pub fn conv(mut self, program: MacroProgram, scale: QuantScale, out_scale: f32) -> Network {
        let (c, h, w) = self.current_shape();
        assert_eq!(
            program.ns(),
            c,
            "conv program has ns = {} stages but the activation has {c} channels",
            program.ns()
        );
        let out = (program.ndec(), h, w);
        self.push(
            "conv",
            out,
            LayerKind::Conv {
                program,
                scale,
                out_scale,
            },
        );
        self
    }

    /// Appends an elementwise ReLU.
    #[must_use]
    pub fn relu(mut self) -> Network {
        let shape = self.current_shape();
        self.push("relu", shape, LayerKind::Relu);
        self
    }

    /// Appends a 2×2, stride-2 max pool.
    ///
    /// # Panics
    ///
    /// Panics when the spatial size is not even.
    #[must_use]
    pub fn max_pool2(mut self) -> Network {
        let (c, h, w) = self.current_shape();
        assert!(
            h % 2 == 0 && w % 2 == 0,
            "max_pool2 needs even spatial dims, got {h}x{w}"
        );
        self.push("pool", (c, h / 2, w / 2), LayerKind::MaxPool2);
        self
    }

    /// Appends a per-channel affine `gain[c] * x + bias[c]` (a folded
    /// batch-norm).
    ///
    /// # Panics
    ///
    /// Panics when `gain`/`bias` do not have one entry per channel.
    #[must_use]
    pub fn affine(mut self, gain: Vec<f32>, bias: Vec<f32>) -> Network {
        let shape = self.current_shape();
        assert_eq!(gain.len(), shape.0, "one gain per channel");
        assert_eq!(bias.len(), shape.0, "one bias per channel");
        self.push("affine", shape, LayerKind::Affine { gain, bias });
        self
    }

    /// Appends a dense head over the flattened activation: `weights` is
    /// one row per output, each `c * h * w` long.
    ///
    /// # Panics
    ///
    /// Panics when a weight row or the bias disagrees with the shapes.
    #[must_use]
    pub fn linear(mut self, weights: Vec<Vec<f32>>, bias: Vec<f32>) -> Network {
        let (c, h, w) = self.current_shape();
        let in_len = c * h * w;
        assert!(!weights.is_empty(), "linear needs at least one output");
        for (o, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), in_len, "weight row {o} must be {in_len} long");
        }
        assert_eq!(bias.len(), weights.len(), "one bias per output");
        let out = (1, 1, weights.len());
        self.push("linear", out, LayerKind::Linear { weights, bias });
        self
    }

    /// The input shape `(channels, height, width)`.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Flattened input length (`c * h * w`).
    pub fn input_len(&self) -> usize {
        self.input.0 * self.input.1 * self.input.2
    }

    /// Flattened output length of the last layer.
    pub fn output_len(&self) -> usize {
        let (c, h, w) = self.current_shape();
        c * h * w
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers yet.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer names, in order — the stage names of the lowered
    /// pipeline.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name.clone()).collect()
    }

    /// Runs one image through every layer on the host, capturing each
    /// layer's full output activation — the per-stage golden reference
    /// each pipeline stage is tested against.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::MalformedProgram`] when `image` does not
    /// have `input_len()` values (and any layer's own failure).
    pub fn forward_trace(&self, image: &[f32]) -> Result<Vec<LayerActivation>, BackendError> {
        if image.len() != self.input_len() {
            return Err(BackendError::MalformedProgram {
                reason: format!(
                    "image has {} values, the network takes {}",
                    image.len(),
                    self.input_len()
                ),
            });
        }
        let mut x = image.to_vec();
        let mut trace = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            x = step(layer, &x)?;
            trace.push(LayerActivation {
                name: layer.name.clone(),
                output: x.clone(),
            });
        }
        Ok(trace)
    }

    /// Runs one image through every layer on the host (conv layers via
    /// [`MacroProgram::reference_output`] — the exact math every macro
    /// backend is bit-identical to) and returns the final activation.
    ///
    /// # Errors
    ///
    /// As [`Network::forward_trace`].
    pub fn forward(&self, image: &[f32]) -> Result<Vec<f32>, BackendError> {
        if image.len() != self.input_len() {
            return Err(BackendError::MalformedProgram {
                reason: format!(
                    "image has {} values, the network takes {}",
                    image.len(),
                    self.input_len()
                ),
            });
        }
        let mut x = image.to_vec();
        for layer in &self.layers {
            x = step(layer, &x)?;
        }
        Ok(x)
    }

    /// Lowers the network into a [`PipelineSpec`]: every conv layer
    /// becomes a [`MacroStage`] (serving on `kind` backends under
    /// `policy`), every host layer a [`HostStage`] — **sharing the same
    /// encode/decode/apply code paths as [`Network::forward`]**, which
    /// is what makes the deployed pipeline bit-identical to the host
    /// forward.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::MalformedProgram`] for an empty network,
    /// plus any conv program's own validation failure.
    pub fn to_pipeline_spec(
        &self,
        kind: BackendKind,
        policy: &StagePolicy,
    ) -> Result<PipelineSpec, BackendError> {
        if self.layers.is_empty() {
            return Err(BackendError::MalformedProgram {
                reason: "cannot lower an empty network".into(),
            });
        }
        let mut spec = PipelineSpec::new();
        for layer in &self.layers {
            match &layer.kind {
                LayerKind::Conv {
                    program,
                    scale,
                    out_scale,
                } => {
                    let (c, h, w) = layer.in_shape;
                    let cfg = MacroConfig::new(program.ndec(), c);
                    let in_shape = layer.in_shape;
                    let scale = *scale;
                    let (out_c, out_scale, hw) = (program.ndec(), *out_scale, h * w);
                    let stage = MacroStage::new(
                        &layer.name,
                        &cfg,
                        program.clone(),
                        kind,
                        move |x: &[f32]| conv_encode(in_shape, scale, x),
                        move |r: &BatchResult| {
                            conv_outputs(
                                out_c,
                                hw,
                                out_scale,
                                r.tokens.iter().map(|t| t.outputs.as_slice()),
                            )
                        },
                    )?
                    .with_policy(policy.clone());
                    spec.push(StageSpec::Macro(stage));
                }
                host => {
                    let host = host.clone();
                    let in_shape = layer.in_shape;
                    spec.push(StageSpec::Host(HostStage::new(
                        &layer.name,
                        move |x: Vec<f32>| apply_host(&host, in_shape, &x),
                    )));
                }
            }
        }
        Ok(spec)
    }

    /// A small deterministic two-conv CNN for tests, examples and
    /// benches: `(2, 8, 8)` images → conv(2→4) → ReLU → pool →
    /// conv(4→8) → ReLU → pool → affine → linear → 10 logits. Every
    /// weight is a pure function of `seed`.
    pub fn demo(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6E65_745F_6465_6D6F);
        let gain: Vec<f32> = (0..8).map(|_| rng.gen_range(0.5..1.5)).collect();
        let bias: Vec<f32> = (0..8).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let flat = 8 * 2 * 2;
        let weights: Vec<Vec<f32>> = (0..10)
            .map(|_| (0..flat).map(|_| rng.gen_range(-0.25..0.25)).collect())
            .collect();
        let head_bias: Vec<f32> = (0..10).map(|_| rng.gen_range(-0.1..0.1)).collect();
        Network::new(2, 8, 8)
            .conv(
                MacroProgram::random(4, 2, seed),
                QuantScale::new(1.0 / 64.0),
                1.0 / 64.0,
            )
            .relu()
            .max_pool2()
            .conv(
                MacroProgram::random(8, 4, seed ^ 0x9E37_79B9),
                QuantScale::new(1.0 / 16.0),
                1.0 / 64.0,
            )
            .relu()
            .max_pool2()
            .affine(gain, bias)
            .linear(weights, head_bias)
    }

    /// A deterministic `[-1, 1]` test image for [`Network::demo`]-style
    /// networks: a pure function of `seed` with `len` values.
    pub fn demo_image(seed: u64, len: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0069_6D61_6765);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }
}

/// Runs one layer on the host — the single code path shared by
/// [`Network::forward`] and the lowered pipeline's host stages.
fn step(layer: &Layer, x: &[f32]) -> Result<Vec<f32>, BackendError> {
    match &layer.kind {
        LayerKind::Conv {
            program,
            scale,
            out_scale,
        } => {
            let (_, h, w) = layer.in_shape;
            let batch = conv_encode(layer.in_shape, *scale, x)?;
            let rows: Vec<Vec<i16>> = batch
                .tokens()
                .iter()
                .map(|t| program.reference_output(t))
                .collect();
            conv_outputs(
                program.ndec(),
                h * w,
                *out_scale,
                rows.iter().map(|r| r.as_slice()),
            )
        }
        host => apply_host(host, layer.in_shape, x),
    }
}

/// The host-side layer math (everything but conv). Total over
/// [`LayerKind`] so the pipeline's host closures can call it directly.
fn apply_host(kind: &LayerKind, in_shape: Shape, x: &[f32]) -> Result<Vec<f32>, BackendError> {
    let (c, h, w) = in_shape;
    if x.len() != c * h * w {
        return Err(BackendError::MalformedProgram {
            reason: format!(
                "activation has {} values, the layer takes {}",
                x.len(),
                c * h * w
            ),
        });
    }
    match kind {
        LayerKind::Conv { .. } => Err(BackendError::MalformedProgram {
            reason: "conv layers run on the macro, not the host path".into(),
        }),
        LayerKind::Relu => Ok(x.iter().map(|&v| v.max(0.0)).collect()),
        LayerKind::MaxPool2 => {
            let (oh, ow) = (h / 2, w / 2);
            let mut out = vec![0.0f32; c * oh * ow];
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let v = x[(ch * h + 2 * oy + dy) * w + 2 * ox + dx];
                                best = best.max(v);
                            }
                        }
                        out[(ch * oh + oy) * ow + ox] = best;
                    }
                }
            }
            Ok(out)
        }
        LayerKind::Affine { gain, bias } => {
            let hw = h * w;
            let mut out = Vec::with_capacity(x.len());
            for ch in 0..c {
                for p in 0..hw {
                    out.push(gain[ch] * x[ch * hw + p] + bias[ch]);
                }
            }
            Ok(out)
        }
        LayerKind::Linear { weights, bias } => Ok(weights
            .iter()
            .zip(bias)
            .map(|(row, b)| row.iter().zip(x).map(|(wv, xv)| wv * xv).sum::<f32>() + b)
            .collect()),
    }
}

/// im2col for one image, matching [`crate::layers::im2col3x3`]'s layout
/// (row per output pixel `oy * w + ox`, column `ch * 9 + ky * 3 + kx`,
/// zero padding 1), then quantisation into one token per output pixel
/// with `ns =` input channels — exactly the macro's geometry, since a
/// subvector is one 3×3 patch.
fn conv_encode(in_shape: Shape, scale: QuantScale, x: &[f32]) -> Result<TokenBatch, BackendError> {
    let (c, h, w) = in_shape;
    if x.len() != c * h * w {
        return Err(BackendError::MalformedProgram {
            reason: format!(
                "activation has {} values, the conv takes {}",
                x.len(),
                c * h * w
            ),
        });
    }
    let mut rows = Vec::with_capacity(h * w);
    for oy in 0..h {
        for ox in 0..w {
            let mut row = vec![0.0f32; c * 9];
            for ch in 0..c {
                for ky in 0..3 {
                    let iy = oy as isize + ky as isize - 1;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..3 {
                        let ix = ox as isize + kx as isize - 1;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        row[ch * 9 + ky * 3 + kx] = x[(ch * h + iy as usize) * w + ix as usize];
                    }
                }
            }
            rows.push(row);
        }
    }
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    TokenBatch::from_f32_rows(&refs, c, scale)
}

/// Reassembles per-token macro outputs (one token per output pixel, one
/// i16 per output channel) into a flattened `(out_c, h, w)` activation,
/// dequantised by `out_scale`. Defensive about widths: a macro answer
/// that breaks the geometry is a typed error, never mis-sliced data.
fn conv_outputs<'a>(
    out_c: usize,
    hw: usize,
    out_scale: f32,
    rows: impl ExactSizeIterator<Item = &'a [i16]>,
) -> Result<Vec<f32>, BackendError> {
    if rows.len() != hw {
        return Err(BackendError::MalformedProgram {
            reason: format!("conv produced {} tokens for {hw} output pixels", rows.len()),
        });
    }
    let mut out = vec![0.0f32; out_c * hw];
    for (p, row) in rows.enumerate() {
        if row.len() != out_c {
            return Err(BackendError::MalformedProgram {
                reason: format!(
                    "conv token {p} carries {} outputs for {out_c} channels",
                    row.len()
                ),
            });
        }
        for (ch, &v) in row.iter().enumerate() {
            out[ch * hw + p] = f32::from(v) * out_scale;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::im2col3x3;
    use crate::tensor::Tensor4;

    #[test]
    fn demo_is_deterministic_and_shaped() {
        let net = Network::demo(3);
        assert_eq!(net.input_shape(), (2, 8, 8));
        assert_eq!(net.input_len(), 128);
        assert_eq!(net.output_len(), 10);
        assert_eq!(net.len(), 8);
        assert!(!net.is_empty());
        assert_eq!(
            net.layer_names(),
            ["0-conv", "1-relu", "2-pool", "3-conv", "4-relu", "5-pool", "6-affine", "7-linear"]
        );
        let image = Network::demo_image(3, net.input_len());
        let a = net.forward(&image).unwrap();
        let b = Network::demo(3).forward(&image).unwrap();
        assert_eq!(a, b, "same seed, same logits — bit for bit");
        let other = net
            .forward(&Network::demo_image(4, net.input_len()))
            .unwrap();
        assert_ne!(a, other, "different images tell apart");
    }

    #[test]
    fn forward_trace_matches_forward_layer_by_layer() {
        let net = Network::demo(11);
        let image = Network::demo_image(11, net.input_len());
        let trace = net.forward_trace(&image).unwrap();
        assert_eq!(trace.len(), net.len());
        assert_eq!(
            trace.last().unwrap().output,
            net.forward(&image).unwrap(),
            "the last activation is the forward output"
        );
        assert_eq!(trace[0].name, "0-conv");
        assert_eq!(trace[0].output.len(), 4 * 8 * 8);
        assert_eq!(trace[2].output.len(), 4 * 4 * 4, "pool halves each dim");
        // ReLU really clamps: its output is the positive part of conv's.
        let clamped: Vec<f32> = trace[0].output.iter().map(|&v| v.max(0.0)).collect();
        assert_eq!(trace[1].output, clamped);
    }

    #[test]
    fn conv_encode_matches_the_training_stacks_im2col() {
        // One image through the hand-rolled single-image im2col must
        // produce the same patch rows as the training stack's batched
        // `im2col3x3` — the layout contract the lowering relies on.
        let (c, h, w) = (3, 4, 4);
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32).sin()).collect();
        let golden = im2col3x3(&Tensor4::from_vec(1, c, h, w, x.clone()));
        let scale = QuantScale::new(1.0);
        let batch = conv_encode((c, h, w), scale, &x).unwrap();
        assert_eq!(batch.len(), h * w);
        for (p, token) in batch.tokens().iter().enumerate() {
            for s in 0..c {
                for e in 0..9 {
                    let expected = scale.quantize(golden[(p, s * 9 + e)]);
                    assert_eq!(token[s][e], expected, "pixel {p}, stage {s}, elem {e}");
                }
            }
        }
    }

    #[test]
    fn bad_shapes_are_typed_errors() {
        let net = Network::demo(1);
        assert!(matches!(
            net.forward(&[0.0; 3]).unwrap_err(),
            BackendError::MalformedProgram { .. }
        ));
        assert!(matches!(
            net.forward_trace(&[]).unwrap_err(),
            BackendError::MalformedProgram { .. }
        ));
        let empty = Network::new(1, 2, 2);
        assert!(matches!(
            empty
                .to_pipeline_spec(
                    maddpipe_runtime::backend::BackendKind::Analytic,
                    &StagePolicy::default()
                )
                .unwrap_err(),
            BackendError::MalformedProgram { .. }
        ));
        // Wrong-width macro answers are typed, never mis-sliced.
        let short = [vec![0i16; 2], vec![0i16; 1]];
        let err = conv_outputs(2, 2, 1.0, short.iter().map(|r| r.as_slice())).unwrap_err();
        assert!(
            matches!(err, BackendError::MalformedProgram { .. }),
            "{err}"
        );
        let few = [vec![0i16; 2]];
        let err = conv_outputs(2, 2, 1.0, few.iter().map(|r| r.as_slice())).unwrap_err();
        assert!(
            matches!(err, BackendError::MalformedProgram { .. }),
            "{err}"
        );
    }

    #[test]
    fn lowering_preserves_layer_names_and_reference_trace_matches_forward_trace() {
        let net = Network::demo(5);
        let spec = net
            .to_pipeline_spec(
                maddpipe_runtime::backend::BackendKind::Functional { workers: 1 },
                &StagePolicy::default(),
            )
            .unwrap();
        assert_eq!(spec.stage_names(), net.layer_names());
        let image = Network::demo_image(5, net.input_len());
        let host_trace = net.forward_trace(&image).unwrap();
        let pipe_trace = spec.reference_trace(&image).unwrap();
        assert_eq!(pipe_trace.len(), host_trace.len());
        for (stage, host) in pipe_trace.iter().zip(&host_trace) {
            assert_eq!(stage, &host.output, "stage {} diverged", host.name);
        }
    }
}
