//! SGD training and evaluation loops.

use crate::data::Dataset;
use crate::net::ResNet9;
use core::fmt;
use maddpipe_amm::metrics::argmax;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (linear warm-up for the first 20 % of steps,
    /// linear decay afterwards).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 0.08,
            momentum: 0.9,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean loss of each epoch.
    pub epoch_loss: Vec<f32>,
}

impl fmt::Display for TrainStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loss per epoch: ")?;
        for (i, l) in self.epoch_loss.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:.3}")?;
        }
        Ok(())
    }
}

/// Trains the network with SGD + momentum and a triangular LR schedule.
///
/// # Panics
///
/// Panics if the dataset is empty or the batch size is zero.
pub fn train(net: &mut ResNet9, data: &Dataset, cfg: &TrainConfig) -> TrainStats {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let batches_per_epoch = data.len().div_ceil(cfg.batch_size);
    let total_steps = (cfg.epochs * batches_per_epoch).max(1);
    let warmup = (total_steps / 5).max(1);
    let mut step = 0usize;
    let mut epoch_loss = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let mut loss_sum = 0.0f64;
        let mut count = 0usize;
        let mut start = 0usize;
        while start < data.len() {
            let len = cfg.batch_size.min(data.len() - start);
            let (x, labels) = data.batch(start, len);
            let (loss, grad) = net.loss(&x, &labels);
            net.backward(&grad, len);
            let lr = schedule(cfg.lr, step, warmup, total_steps);
            net.step(lr, cfg.momentum);
            loss_sum += loss as f64;
            count += 1;
            step += 1;
            start += len;
        }
        epoch_loss.push((loss_sum / count as f64) as f32);
    }
    TrainStats { epoch_loss }
}

fn schedule(peak: f32, step: usize, warmup: usize, total: usize) -> f32 {
    if step < warmup {
        peak * (step + 1) as f32 / warmup as f32
    } else {
        let remain = (total - step) as f32 / (total - warmup).max(1) as f32;
        (peak * remain).max(peak * 0.05)
    }
}

/// Top-1 accuracy on a dataset (evaluation mode, batched).
pub fn evaluate(net: &mut ResNet9, data: &Dataset, batch_size: usize) -> f64 {
    assert!(batch_size > 0, "batch size must be positive");
    let mut correct = 0usize;
    let mut start = 0usize;
    while start < data.len() {
        let len = batch_size.min(data.len() - start);
        let (x, labels) = data.batch(start, len);
        let logits = net.forward(&x, false);
        for (r, &label) in labels.iter().enumerate() {
            if argmax(logits.row(r)) == label {
                correct += 1;
            }
        }
        start += len;
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_cifar;

    #[test]
    fn training_learns_the_synthetic_task_above_chance() {
        let (train_set, test_set) = synthetic_cifar(12, 6, 16, 11);
        let mut net = ResNet9::new(4, 16, 10, 5);
        let cfg = TrainConfig {
            // 12 epochs × 6 batches = 72 SGD steps: enough for this tiny
            // net to clear the bar decisively (≈0.8 test accuracy) without
            // depending on a lucky init stream.
            epochs: 12,
            batch_size: 20,
            lr: 0.06,
            momentum: 0.9,
        };
        let stats = train(&mut net, &train_set, &cfg);
        assert!(
            stats.epoch_loss.last().unwrap() < stats.epoch_loss.first().unwrap(),
            "{stats}"
        );
        let acc = evaluate(&mut net, &test_set, 20);
        assert!(
            acc > 0.25,
            "test accuracy {acc} must beat chance (0.10) clearly; {stats}"
        );
    }

    #[test]
    fn schedule_warms_up_then_decays() {
        let peak = 1.0;
        assert!(schedule(peak, 0, 10, 100) < 0.2);
        assert!((schedule(peak, 9, 10, 100) - 1.0).abs() < 1e-6);
        assert!(schedule(peak, 99, 10, 100) < 0.1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let (mut train_set, _) = synthetic_cifar(1, 1, 16, 1);
        train_set.labels.clear();
        let mut net = ResNet9::new(4, 16, 10, 5);
        let _ = train(&mut net, &train_set, &TrainConfig::default());
    }
}
