//! Synthetic CIFAR-like dataset.
//!
//! No image dataset is available offline, so the accuracy experiment runs
//! on a generated 10-class, 3-channel task designed to exercise the same
//! pipeline properties as CIFAR-10: spatially structured inputs, class
//! information spread over orientation / frequency / colour, per-instance
//! jitter and noise so the task is learnable but not trivial. What the
//! Table II accuracy row actually demonstrates — float ≈ digital-MADDNESS
//! \> analog-MADDNESS — is a *relative* statement that this substitution
//! preserves (see DESIGN.md §2).

use crate::tensor::Tensor4;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled image set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, NCHW in `[-1, 1]`.
    pub images: Tensor4,
    /// One label per image, in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies a contiguous batch.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, start: usize, len: usize) -> (Tensor4, Vec<usize>) {
        assert!(start + len <= self.len(), "batch out of range");
        let (_, c, h, w) = self.images.shape();
        let plane = c * h * w;
        let data = self.images.data()[start * plane..(start + len) * plane].to_vec();
        (
            Tensor4::from_vec(len, c, h, w, data),
            self.labels[start..start + len].to_vec(),
        )
    }
}

/// Generates train and test splits of the synthetic task.
///
/// Every class is a distinct combination of grating orientation,
/// spatial frequency, colour phase and a bright blob location; instances
/// get random phase jitter, ±2 px translation and Gaussian pixel noise.
///
/// # Panics
///
/// Panics if `size < 8`.
pub fn synthetic_cifar(
    train_per_class: usize,
    test_per_class: usize,
    size: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    assert!(size >= 8, "images must be at least 8×8");
    let mut rng = StdRng::seed_from_u64(seed);
    let train = generate_split(train_per_class, size, &mut rng);
    let test = generate_split(test_per_class, size, &mut rng);
    (train, test)
}

fn generate_split(per_class: usize, size: usize, rng: &mut StdRng) -> Dataset {
    let classes = 10;
    let n = per_class * classes;
    let mut images = Tensor4::zeros(n, 3, size, size);
    let mut labels = Vec::with_capacity(n);
    // Interleave classes so contiguous batches stay roughly balanced.
    for i in 0..n {
        let class = i % classes;
        labels.push(class);
        render_instance(&mut images, i, class, size, rng);
    }
    Dataset {
        images,
        labels,
        classes,
    }
}

fn render_instance(images: &mut Tensor4, idx: usize, class: usize, size: usize, rng: &mut StdRng) {
    let theta = class as f32 * core::f32::consts::PI / 10.0;
    let freq = 1.5 + (class % 3) as f32;
    let color_phase = (class / 3) as f32 * 0.9;
    let jitter: f32 = rng.gen_range(-0.6..0.6);
    let dx: isize = rng.gen_range(-2..=2);
    let dy: isize = rng.gen_range(-2..=2);
    // Blob centre in a class-specific quadrant.
    let bx = (size as f32 * (0.25 + 0.5 * ((class % 4) as f32 / 3.0))) as isize + dx;
    let by = (size as f32 * (0.25 + 0.5 * ((class / 4) as f32 / 2.4))) as isize + dy;
    let (sin_t, cos_t) = theta.sin_cos();
    for ch in 0..3usize {
        let ch_phase = color_phase + ch as f32 * 2.1 + jitter;
        for y in 0..size {
            for x in 0..size {
                let xf = (x as isize + dx) as f32 / size as f32;
                let yf = (y as isize + dy) as f32 / size as f32;
                let grating =
                    (core::f32::consts::TAU * freq * (xf * cos_t + yf * sin_t) + ch_phase).sin();
                let d2 = ((x as isize - bx) as f32).powi(2) + ((y as isize - by) as f32).powi(2);
                let blob = 1.6
                    * (-d2 / (size as f32 * 0.8)).exp()
                    * if ch == class % 3 { 1.0 } else { 0.3 };
                let noise: f32 = rng.gen_range(-0.25..0.25);
                images[(idx, ch, y, x)] = (0.6 * grating + blob + noise).clamp(-1.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_balance() {
        let (train, test) = synthetic_cifar(8, 4, 16, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 40);
        assert_eq!(train.images.shape(), (80, 3, 16, 16));
        for class in 0..10 {
            let count = train.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 8, "class {class}");
        }
    }

    #[test]
    fn pixels_are_bounded() {
        let (train, _) = synthetic_cifar(2, 1, 16, 2);
        assert!(train.images.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn classes_are_statistically_distinct() {
        // Mean image per class should differ clearly between classes —
        // otherwise the task is unlearnable.
        let (train, _) = synthetic_cifar(12, 1, 16, 3);
        let plane = 3 * 16 * 16;
        let mut means = vec![vec![0.0f32; plane]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.len() {
            let c = train.labels[i];
            counts[c] += 1;
            for (j, m) in means[c].iter_mut().enumerate() {
                *m += train.images.data()[i * plane + j];
            }
        }
        for (c, m) in means.iter_mut().enumerate() {
            for v in m.iter_mut() {
                *v /= counts[c] as f32;
            }
        }
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
                .sqrt()
        };
        let mut min_pair = f32::INFINITY;
        for a in 0..10 {
            for b in a + 1..10 {
                min_pair = min_pair.min(dist(&means[a], &means[b]));
            }
        }
        assert!(min_pair > 1.0, "closest class pair distance {min_pair}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = synthetic_cifar(2, 1, 16, 7);
        let (b, _) = synthetic_cifar(2, 1, 16, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn batch_slices_correctly() {
        let (train, _) = synthetic_cifar(2, 1, 16, 4);
        let (imgs, labels) = train.batch(5, 10);
        assert_eq!(imgs.shape(), (10, 3, 16, 16));
        assert_eq!(labels, &train.labels[5..15]);
        assert_eq!(imgs.plane(0, 0), train.images.plane(5, 0));
    }
}
