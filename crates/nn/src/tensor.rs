//! A minimal NCHW activation tensor.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense 4-D tensor in NCHW layout (batch, channel, height, width).
///
/// ```
/// use maddpipe_nn::tensor::Tensor4;
///
/// let mut t = Tensor4::zeros(1, 3, 2, 2);
/// t[(0, 2, 1, 1)] = 5.0;
/// assert_eq!(t[(0, 2, 1, 1)], 5.0);
/// assert_eq!(t.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Creates a tensor from a flat NCHW buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length disagrees with the shape.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Tensor4 {
        assert_eq!(data.len(), n * c * h * w, "buffer does not match shape");
        Tensor4 { n, c, h, w, data }
    }

    /// Shape as `(n, c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a zero-element tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Borrow of one image-channel plane.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let start = self.offset(n, c, 0, 0);
        &self.data[start..start + self.h * self.w]
    }

    /// Returns a tensor of identical shape filled with zeros.
    pub fn zeros_like(&self) -> Tensor4 {
        Tensor4::zeros(self.n, self.c, self.h, self.w)
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor4) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Index<(usize, usize, usize, usize)> for Tensor4 {
    type Output = f32;
    #[inline]
    fn index(&self, (n, c, h, w): (usize, usize, usize, usize)) -> &f32 {
        &self.data[self.offset(n, c, h, w)]
    }
}

impl IndexMut<(usize, usize, usize, usize)> for Tensor4 {
    #[inline]
    fn index_mut(&mut self, (n, c, h, w): (usize, usize, usize, usize)) -> &mut f32 {
        let i = self.offset(n, c, h, w);
        &mut self.data[i]
    }
}

impl fmt::Display for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor4[{}×{}×{}×{}]", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t[(1, 2, 3, 4)] = 7.0;
        t[(0, 0, 0, 0)] = -1.0;
        assert_eq!(t[(1, 2, 3, 4)], 7.0);
        assert_eq!(t[(0, 0, 0, 0)], -1.0);
        assert_eq!(t.len(), 120);
        assert_eq!(t.shape(), (2, 3, 4, 5));
    }

    #[test]
    fn plane_is_contiguous_hw() {
        let mut t = Tensor4::zeros(1, 2, 2, 2);
        t[(0, 1, 0, 1)] = 3.0;
        t[(0, 1, 1, 0)] = 4.0;
        assert_eq!(t.plane(0, 1), &[0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor4::zeros(1, 1, 1, 2);
        let mut b = a.zeros_like();
        b.data_mut()[0] = 2.0;
        b.data_mut()[1] = 3.0;
        a.add_assign(&b);
        a.add_assign(&b);
        assert_eq!(a.data(), &[4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn bad_buffer_rejected() {
        let _ = Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]);
    }
}
