//! MADDNESS layer substitution — turning a trained float network into the
//! network the accelerators actually run.
//!
//! The paper's accuracy row (Table II) compares three executions of the
//! same trained ResNet9:
//!
//! * the proposed macro and Stella Nera both run **digital BDT MADDNESS**
//!   (identical algorithm → identical accuracy: 92.6 %);
//! * the analog accelerator \[21\] runs **Manhattan-centroid MADDNESS
//!   through noisy delay chains** (89.0 %).
//!
//! [`substitute_digital`] and [`substitute_analog`] perform those two
//! conversions: calibrate on activations captured from a forward pass,
//! train the per-layer operators, and swap each convolution's execution
//! engine in place. The `prep` convolution (3 input channels) is kept in
//! float on all accelerators — first layers are tiny and are handled by
//! the host in every deployment the paper cites.

use crate::layers::ConvExec;
use crate::net::ResNet9;
use crate::tensor::Tensor4;
use maddpipe_amm::encoders::CentroidEncoder;
use maddpipe_amm::kmeans::Distance;
use maddpipe_amm::linalg::Mat;
use maddpipe_amm::maddness::{MaddnessMatmul, MaddnessParams};
use maddpipe_amm::MaddnessError;
use maddpipe_baselines::analog_dtc::AnalogDtcEncoder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The analog accelerator's approximate matmul: per-subspace Manhattan
/// centroids, float LUTs, and delay-noise in the argmin.
#[derive(Debug, Clone)]
pub struct AnalogAmm {
    encoders: Vec<AnalogDtcEncoder>,
    luts: Vec<Mat>,
    subspace_len: usize,
    rng: StdRng,
}

impl AnalogAmm {
    /// Trains the analog operator: `k` L1 centroids per 9-dim subspace,
    /// LUTs `centroids · W`, chain-delay noise `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `w` shapes disagree or the width is not a
    /// multiple of 9.
    pub fn train(x: &Mat, w: &Mat, k: usize, sigma: f64, seed: u64) -> AnalogAmm {
        assert_eq!(x.cols(), w.rows(), "weight rows vs input columns");
        let subspace_len = 9;
        assert_eq!(x.cols() % subspace_len, 0, "width must be a multiple of 9");
        let m = x.cols() / subspace_len;
        let mut encoders = Vec::with_capacity(m);
        let mut luts = Vec::with_capacity(m);
        for s in 0..m {
            let sub = x.col_range(s * subspace_len, (s + 1) * subspace_len);
            let enc = CentroidEncoder::train(&sub, k, Distance::L1, seed.wrapping_add(s as u64));
            // LUT: centroid block × the weight rows of this subspace.
            let mut w_block = Mat::zeros(subspace_len, w.cols());
            for r in 0..subspace_len {
                w_block
                    .row_mut(r)
                    .copy_from_slice(w.row(s * subspace_len + r));
            }
            luts.push(enc.centroids().matmul(&w_block));
            encoders.push(AnalogDtcEncoder::from_encoder(enc, sigma));
        }
        AnalogAmm {
            encoders,
            luts,
            subspace_len,
            rng: StdRng::seed_from_u64(seed ^ 0xA11A),
        }
    }

    /// The per-chain delay-noise sigma.
    pub fn sigma(&self) -> f64 {
        self.encoders.first().map_or(0.0, |e| e.sigma)
    }

    /// Applies the noisy approximate matmul.
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with training.
    pub fn apply(&mut self, x: &Mat) -> Mat {
        let m = self.encoders.len();
        assert_eq!(x.cols(), m * self.subspace_len, "input width mismatch");
        let n_out = self.luts[0].cols();
        let mut out = Mat::zeros(x.rows(), n_out);
        for r in 0..x.rows() {
            let row = x.row(r);
            for (s, enc) in self.encoders.iter().enumerate() {
                let sub = &row[s * self.subspace_len..(s + 1) * self.subspace_len];
                let code = enc.encode_one_noisy(sub, &mut self.rng);
                let out_row = out.row_mut(r);
                for (o, &v) in out_row.iter_mut().zip(self.luts[s].row(code)) {
                    *o += v;
                }
            }
        }
        out
    }
}

/// Replaces every eligible convolution with the digital BDT MADDNESS path
/// (the proposed macro / Stella Nera algorithm), calibrating on the
/// activations of `calib`.
///
/// Calibration is **sequential**: each layer is calibrated on activations
/// produced by the already-substituted earlier layers, so later hash
/// functions learn the distribution they will actually see — the standard
/// MADDNESS/LUT-NN deployment recipe. Batch-norm running statistics are
/// refreshed afterwards.
///
/// Returns the number of substituted layers.
///
/// # Errors
///
/// Propagates training failures from the MADDNESS operator.
pub fn substitute_digital(
    net: &mut ResNet9,
    calib: &Tensor4,
    ridge: bool,
) -> Result<usize, MaddnessError> {
    let n_convs = net.convs_mut().len();
    let mut replaced = 0;
    for i in 0..n_convs {
        if net.convs_mut()[i].in_channels() < 4 {
            continue; // prep layer stays on the host
        }
        // Refresh caches through the partially substituted network.
        let _ = net.forward(calib, false);
        let conv = &mut net.convs_mut()[i];
        let patches = conv
            .take_cached_patches()
            .expect("forward pass must have cached patches");
        let params = MaddnessParams {
            optimize_prototypes: ridge,
            ..MaddnessParams::default()
        };
        let op = MaddnessMatmul::train(&patches, &conv.weight, params)?;
        conv.exec = ConvExec::Digital(op);
        replaced += 1;
    }
    recalibrate_bn(net, calib);
    Ok(replaced)
}

/// Replaces every eligible convolution with the analog noisy-encoder path
/// of \[21\] (sequential calibration, like [`substitute_digital`]).
///
/// Returns the number of substituted layers.
pub fn substitute_analog(net: &mut ResNet9, calib: &Tensor4, sigma: f64, seed: u64) -> usize {
    let n_convs = net.convs_mut().len();
    let mut replaced = 0;
    for i in 0..n_convs {
        if net.convs_mut()[i].in_channels() < 4 {
            continue;
        }
        let _ = net.forward(calib, false);
        let conv = &mut net.convs_mut()[i];
        let patches = conv
            .take_cached_patches()
            .expect("forward pass must have cached patches");
        let op = AnalogAmm::train(
            &patches,
            &conv.weight,
            16,
            sigma,
            seed.wrapping_add(replaced as u64),
        );
        conv.exec = ConvExec::Analog(op);
        replaced += 1;
    }
    recalibrate_bn(net, calib);
    replaced
}

/// Nudges batch-norm running statistics toward the substituted network's
/// activation distribution: one training-mode pass at the default
/// momentum (0.1).
///
/// Deliberately a *light* touch. The MADDNESS encoders were calibrated on
/// activations produced under the pre-substitution statistics, so the
/// running statistics are part of the distribution the hash functions
/// were fitted to: adapting them fully to the calibration batch (e.g. via
/// [`BatchNorm2d::set_stat_momentum`] at 1.0 and one pass — see
/// `bn_exact_recalibration_is_available` for that knob) shifts every
/// substituted layer's input distribution away from its own calibration
/// and measurably degrades accuracy, while repeated passes compound the
/// same drift. One 10 % step corrects gross quantisation-induced shifts
/// without invalidating the encoder calibration.
fn recalibrate_bn(net: &mut ResNet9, calib: &Tensor4) {
    let _ = net.forward(calib, true);
}

/// Restores every convolution to the exact float path.
///
/// Note: batch-norm running statistics refreshed during substitution are
/// *not* rolled back — keep a clone of the float model if you need to
/// return to it exactly.
pub fn restore_float(net: &mut ResNet9) {
    for conv in net.convs_mut() {
        conv.exec = ConvExec::Float;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_cifar;
    use crate::train::{evaluate, train, TrainConfig};

    fn trained_net() -> (ResNet9, crate::data::Dataset, crate::data::Dataset) {
        let (train_set, test_set) = synthetic_cifar(12, 6, 16, 21);
        let mut net = ResNet9::new(4, 16, 10, 3);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 24,
            lr: 0.06,
            momentum: 0.9,
        };
        let _ = train(&mut net, &train_set, &cfg);
        (net, train_set, test_set)
    }

    #[test]
    fn digital_substitution_tracks_float_accuracy() {
        let (mut net, train_set, test_set) = trained_net();
        let float_acc = evaluate(&mut net, &test_set, 20);
        let (calib, _) = train_set.batch(0, 60);
        let mut substituted = net.clone();
        let replaced = substitute_digital(&mut substituted, &calib, true).unwrap();
        assert_eq!(replaced, 7, "all but the prep conv get substituted");
        let amm_acc = evaluate(&mut substituted, &test_set, 20);
        // This unit test runs a deliberately tiny net (width 4, 4 epochs,
        // float accuracy ~45%) whose weak features amplify post-hoc
        // MADDNESS error; the release-mode `accuracy` benchmark
        // demonstrates the paper-scale behaviour (width 8: float 100%,
        // digital 84%, analog 15%). Here we assert the robust invariants:
        // substitution keeps the network clearly above chance and the
        // restore path is exact.
        assert!(
            amm_acc >= (float_acc - 0.30).max(0.15),
            "digital MADDNESS {amm_acc} vs float {float_acc}"
        );
        // Restore brings back the float conv engines (BN statistics stay
        // as recalibrated — documented behaviour).
        restore_float(&mut substituted);
        for conv in substituted.convs_mut() {
            assert!(matches!(conv.exec, ConvExec::Float));
        }
        // The untouched original still evaluates identically.
        let again = evaluate(&mut net, &test_set, 20);
        assert!((again - float_acc).abs() < 1e-9);
    }

    #[test]
    fn analog_noise_degrades_accuracy_monotonically() {
        let (mut net, train_set, test_set) = trained_net();
        let (calib, _) = train_set.batch(0, 60);
        // Clean analog (σ=0) ≈ centroid-PQ accuracy.
        let _ = substitute_analog(&mut net, &calib, 0.0, 9);
        let clean = evaluate(&mut net, &test_set, 20);
        restore_float(&mut net);
        // Heavy noise: clearly worse.
        let _ = substitute_analog(&mut net, &calib, 12.0, 9);
        let noisy = evaluate(&mut net, &test_set, 20);
        assert!(
            noisy < clean + 1e-9,
            "noise must not improve accuracy: clean {clean} vs noisy {noisy}"
        );
    }

    #[test]
    fn bn_exact_recalibration_is_available() {
        // The knob `recalibrate_bn` deliberately does NOT use: with
        // momentum forced to 1.0 via `bns_mut`, one training-mode pass
        // sets every running statistic to the batch statistics exactly,
        // so an eval-mode pass over the same batch reproduces the
        // training-mode output.
        let (train_set, _) = synthetic_cifar(4, 1, 16, 33);
        let (batch, _) = train_set.batch(0, 40);
        let mut net = ResNet9::new(4, 16, 10, 13);
        let bns = net.bns_mut();
        assert_eq!(bns.len(), 8, "one batch norm per convolution");
        for bn in bns {
            bn.set_stat_momentum(1.0);
        }
        let trained_view = net.forward(&batch, true);
        let eval_view = net.forward(&batch, false);
        for (a, b) in trained_view.data().iter().zip(eval_view.data()) {
            assert!((a - b).abs() < 1e-4, "train {a} vs eval {b}");
        }
    }

    #[test]
    fn analog_amm_with_zero_noise_is_deterministic_pq() {
        let x = Mat::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[-1.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[0.5, 0.5, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]);
        let w = Mat::from_rows(&[
            &[1.0f32],
            &[0.0],
            &[0.0],
            &[0.0],
            &[0.0],
            &[0.0],
            &[0.0],
            &[0.0],
            &[0.0],
        ]);
        let mut op = AnalogAmm::train(&x, &w, 4, 0.0, 1);
        let a = op.apply(&x);
        let b = op.apply(&x);
        assert_eq!(a, b, "zero noise must be deterministic");
        assert_eq!(a.rows(), 4);
        assert_eq!(a.cols(), 1);
    }
}
