//! The family of product-quantisation encoding functions.
//!
//! The paper's §II-B surveys the MADDNESS-inspired encoders: the balanced
//! BDT (MADDNESS, Stella Nera, and the paper's own DLC hardware), Euclidean
//! nearest-centroid (LUT-NN), and Manhattan nearest-centroid (PECAN and the
//! analog DTC accelerator \[21\]). All are exposed behind one trait so the
//! operator and the accuracy experiments can swap them freely.

use crate::bdt::BdtEncoder;
use crate::kmeans::{kmeans, Distance};
use crate::linalg::Mat;
use core::fmt;

/// An encoding function `enc : ℝ^(d/M) → {0, …, K−1}` for one subspace.
pub trait SubspaceEncoder: fmt::Debug {
    /// Number of prototypes `K` this encoder can select among.
    fn num_prototypes(&self) -> usize;

    /// Encodes one subvector to a prototype index in `0..K`.
    fn encode_one(&self, sub: &[f32]) -> usize;

    /// Encodes every row of a matrix of subvectors.
    fn encode_batch(&self, data: &Mat) -> Vec<usize> {
        (0..data.rows())
            .map(|r| self.encode_one(data.row(r)))
            .collect()
    }

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

impl SubspaceEncoder for BdtEncoder {
    fn num_prototypes(&self) -> usize {
        self.num_leaves()
    }

    fn encode_one(&self, sub: &[f32]) -> usize {
        BdtEncoder::encode_one(self, sub)
    }

    fn name(&self) -> &'static str {
        "bdt"
    }
}

/// Nearest-centroid encoder under a configurable metric.
///
/// With [`Distance::L2`] this is LUT-NN's encoder; with [`Distance::L1`]
/// it is PECAN's (and the functional model of the analog accelerator
/// \[21\], which computes Manhattan distances as delay).
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidEncoder {
    centroids: Mat,
    metric: Distance,
}

impl CentroidEncoder {
    /// Trains `k` centroids on calibration subvectors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `data` has no rows (delegated to
    /// [`kmeans`]).
    pub fn train(data: &Mat, k: usize, metric: Distance, seed: u64) -> CentroidEncoder {
        let result = kmeans(data, k, metric, 25, seed);
        CentroidEncoder {
            centroids: result.centroids,
            metric,
        }
    }

    /// Builds an encoder from explicit centroids.
    pub fn from_centroids(centroids: Mat, metric: Distance) -> CentroidEncoder {
        CentroidEncoder { centroids, metric }
    }

    /// The `K × d` centroid matrix.
    pub fn centroids(&self) -> &Mat {
        &self.centroids
    }

    /// The distance metric used for encoding.
    pub fn metric(&self) -> Distance {
        self.metric
    }

    /// Distances from `sub` to every centroid (exposed so noise-injection
    /// models can perturb them before the argmin — the analog accelerator's
    /// failure mode).
    pub fn distances(&self, sub: &[f32]) -> Vec<f64> {
        (0..self.centroids.rows())
            .map(|c| self.metric.between(sub, self.centroids.row(c)))
            .collect()
    }
}

impl SubspaceEncoder for CentroidEncoder {
    fn num_prototypes(&self) -> usize {
        self.centroids.rows()
    }

    fn encode_one(&self, sub: &[f32]) -> usize {
        let dists = self.distances(sub);
        let mut best = 0usize;
        for (i, &d) in dists.iter().enumerate() {
            if d < dists[best] {
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        match self.metric {
            Distance::L2 => "euclidean",
            Distance::L1 => "manhattan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Mat {
        let mut rows = Vec::new();
        for i in 0..16 {
            let eps = (i % 4) as f32 * 0.05;
            rows.push(vec![-2.0 + eps, 0.0]);
            rows.push(vec![2.0 - eps, 0.0]);
        }
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&slices)
    }

    #[test]
    fn centroid_encoder_separates_blobs() {
        let enc = CentroidEncoder::train(&blobs(), 2, Distance::L2, 1);
        let a = enc.encode_one(&[-2.0, 0.0]);
        let b = enc.encode_one(&[2.0, 0.0]);
        assert_ne!(a, b);
        assert_eq!(enc.num_prototypes(), 2);
    }

    #[test]
    fn l1_and_l2_encoders_have_names() {
        let e2 = CentroidEncoder::train(&blobs(), 2, Distance::L2, 1);
        let e1 = CentroidEncoder::train(&blobs(), 2, Distance::L1, 1);
        assert_eq!(e2.name(), "euclidean");
        assert_eq!(e1.name(), "manhattan");
    }

    #[test]
    fn bdt_implements_the_trait() {
        let enc = BdtEncoder::train(&blobs(), 2).unwrap();
        let codes = SubspaceEncoder::encode_batch(&enc, &blobs());
        assert!(codes.iter().all(|&c| c < enc.num_prototypes()));
        assert_eq!(SubspaceEncoder::name(&enc), "bdt");
    }

    #[test]
    fn distances_expose_the_pre_argmin_view() {
        let enc = CentroidEncoder::from_centroids(
            Mat::from_rows(&[&[0.0, 0.0], &[10.0, 0.0]]),
            Distance::L1,
        );
        let d = enc.distances(&[1.0, 0.0]);
        assert!((d[0] - 1.0).abs() < 1e-9);
        assert!((d[1] - 9.0).abs() < 1e-9);
        assert_eq!(enc.encode_one(&[1.0, 0.0]), 0);
    }

    #[test]
    fn ties_resolve_to_lowest_index() {
        let enc = CentroidEncoder::from_centroids(Mat::from_rows(&[&[-1.0], &[1.0]]), Distance::L2);
        assert_eq!(enc.encode_one(&[0.0]), 0, "equidistant picks index 0");
    }
}
