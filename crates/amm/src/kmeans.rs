//! Seeded k-means clustering for the centroid-based encoders
//! (LUT-NN's Euclidean encoder and PECAN's Manhattan encoder).

use crate::linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distance metric used for assignment (and for the deployed encoder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Distance {
    /// Squared Euclidean distance (LUT-NN).
    #[default]
    L2,
    /// Manhattan distance (PECAN and the analog DTC accelerator \[21\]).
    L1,
}

impl Distance {
    /// Distance between two vectors under this metric.
    pub fn between(self, a: &[f32], b: &[f32]) -> f64 {
        match self {
            Distance::L2 => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let d = (x - y) as f64;
                    d * d
                })
                .sum(),
            Distance::L1 => a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).abs()).sum(),
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// `k × d` centroid matrix.
    pub centroids: Mat,
    /// Assignment of each input row to its centroid.
    pub assignment: Vec<usize>,
    /// Final within-cluster distance sum.
    pub inertia: f64,
}

/// Runs seeded k-means++ with `iters` Lloyd iterations.
///
/// Under [`Distance::L1`] the centroid update uses the coordinate-wise
/// median (the L1 Fréchet mean); under [`Distance::L2`] the mean.
///
/// # Panics
///
/// Panics if `k == 0` or `data` has no rows.
#[allow(clippy::needless_range_loop)] // several parallel index walks over data/assignment/dist2
pub fn kmeans(data: &Mat, k: usize, metric: Distance, iters: usize, seed: u64) -> KMeans {
    assert!(k > 0, "k must be positive");
    assert!(data.rows() > 0, "cannot cluster zero rows");
    let n = data.rows();
    let d = data.cols();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids = Mat::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dist2: Vec<f64> = (0..n)
        .map(|r| metric.between(data.row(r), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist2.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
        for r in 0..n {
            let nd = metric.between(data.row(r), centroids.row(c));
            if nd < dist2[r] {
                dist2[r] = nd;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    for _ in 0..iters {
        // Assign.
        let mut new_inertia = 0.0f64;
        for r in 0..n {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = metric.between(data.row(r), centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            assignment[r] = best;
            new_inertia += best_d;
        }
        // Update.
        match metric {
            Distance::L2 => {
                let mut sums = Mat::zeros(k, d);
                let mut counts = vec![0usize; k];
                for r in 0..n {
                    let c = assignment[r];
                    counts[c] += 1;
                    for j in 0..d {
                        sums[(c, j)] += data[(r, j)];
                    }
                }
                for c in 0..k {
                    if counts[c] > 0 {
                        for j in 0..d {
                            centroids[(c, j)] = sums[(c, j)] / counts[c] as f32;
                        }
                    }
                }
            }
            Distance::L1 => {
                for c in 0..k {
                    let members: Vec<usize> = (0..n).filter(|&r| assignment[r] == c).collect();
                    if members.is_empty() {
                        continue;
                    }
                    for j in 0..d {
                        let mut vals: Vec<f32> = members.iter().map(|&r| data[(r, j)]).collect();
                        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        centroids[(c, j)] = vals[vals.len() / 2];
                    }
                }
            }
        }
        if (inertia - new_inertia).abs() < 1e-9 {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    KMeans {
        centroids,
        assignment,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Mat {
        let mut rows = Vec::new();
        for i in 0..20 {
            let eps = (i % 5) as f32 * 0.01;
            rows.push(vec![-5.0 + eps, -5.0 - eps]);
            rows.push(vec![5.0 - eps, 5.0 + eps]);
        }
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&slices)
    }

    #[test]
    fn recovers_two_blobs() {
        let result = kmeans(&two_blobs(), 2, Distance::L2, 20, 7);
        // The two centroids must land near (−5,−5) and (5,5).
        let mut xs: Vec<f32> = (0..2).map(|c| result.centroids[(c, 0)]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] + 5.0).abs() < 0.5, "{xs:?}");
        assert!((xs[1] - 5.0).abs() < 0.5, "{xs:?}");
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn l1_metric_also_recovers_blobs() {
        let result = kmeans(&two_blobs(), 2, Distance::L1, 20, 9);
        let mut xs: Vec<f32> = (0..2).map(|c| result.centroids[(c, 0)]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            (xs[0] + 5.0).abs() < 0.5 && (xs[1] - 5.0).abs() < 0.5,
            "{xs:?}"
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = kmeans(&two_blobs(), 4, Distance::L2, 10, 42);
        let b = kmeans(&two_blobs(), 4, Distance::L2, 10, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_larger_than_distinct_points_is_tolerated() {
        let data = Mat::from_rows(&[&[1.0], &[1.0], &[2.0]]);
        let result = kmeans(&data, 8, Distance::L2, 5, 3);
        assert_eq!(result.centroids.rows(), 8);
        assert!(result.assignment.iter().all(|&a| a < 8));
    }

    #[test]
    fn distances_are_metrics() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert!((Distance::L2.between(&a, &b) - 25.0).abs() < 1e-9);
        assert!((Distance::L1.between(&a, &b) - 7.0).abs() < 1e-9);
        assert_eq!(Distance::L1.between(&a, &a), 0.0);
    }
}
