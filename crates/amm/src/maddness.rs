//! The MADDNESS approximate-matmul operator: train, encode, decode.
//!
//! Pipeline (paper §II-B):
//!
//! 1. **Train** — slice the input space into `M` subspaces, learn one BDT
//!    hash per subspace, optionally refit the prototypes by global ridge
//!    regression (MADDNESS §4.3), and precompute the LUTs
//!    `lut[m][k][j] = ⟨prototype_{m,k}, W[:,j]⟩`, quantised to INT8 with a
//!    per-output-column scale (the scale must be shared along `m` because
//!    the hardware accumulates raw LUT bytes across subspaces).
//! 2. **Encode** — map each input row to `M` 4-bit codes (the one-hot LUT
//!    addresses of the paper's encoder).
//! 3. **Decode** — gather `M` LUT entries per output and accumulate; in
//!    hardware this is the 10T-SRAM read plus the carry-save adder chain.
//!
//! Two execution paths are provided: a float "algorithm" path, and the
//! integer "deployed" path that matches the hardware bit for bit (INT8
//! activations and LUT entries, 16-bit wrapping accumulation).

use crate::bdt::{BdtEncoder, QuantizedBdt};
use crate::error::MaddnessError;
use crate::linalg::{cholesky_solve, Mat};
use crate::quant::QuantScale;
use core::fmt;

/// Training-time configuration of a [`MaddnessMatmul`].
#[derive(Debug, Clone, PartialEq)]
pub struct MaddnessParams {
    /// BDT depth; the prototype count is `2^levels` (paper: 4 → 16).
    pub levels: usize,
    /// Input dimensions per subspace (paper's CNN mapping: 9, one 3×3
    /// kernel patch per input channel).
    pub subspace_len: usize,
    /// Refit prototypes by global ridge regression after hashing.
    pub optimize_prototypes: bool,
    /// Ridge regularisation strength (only used when optimising).
    pub ridge_lambda: f32,
}

impl Default for MaddnessParams {
    /// The paper's configuration: 4 levels (16 prototypes), 9-dimensional
    /// subspaces, ridge-optimised prototypes.
    fn default() -> MaddnessParams {
        MaddnessParams {
            levels: 4,
            subspace_len: 9,
            optimize_prototypes: true,
            ridge_lambda: 1.0,
        }
    }
}

/// Encoded inputs: one `u8` prototype index per (row, subspace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoding {
    codes: Vec<u8>,
    rows: usize,
    m: usize,
}

impl Encoding {
    /// Number of encoded input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.m
    }

    /// Code of `row` in subspace `m`.
    #[inline]
    pub fn code(&self, row: usize, m: usize) -> u8 {
        self.codes[row * self.m + m]
    }

    /// All codes of one row.
    pub fn row(&self, row: usize) -> &[u8] {
        &self.codes[row * self.m..(row + 1) * self.m]
    }
}

/// INT8 lookup tables with per-output-column scales.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Lut {
    m: usize,
    k: usize,
    n_out: usize,
    entries: Vec<i8>,
    scales: Vec<f32>,
    biases: Vec<f32>,
}

impl Int8Lut {
    /// Number of subspaces.
    pub fn num_subspaces(&self) -> usize {
        self.m
    }

    /// Prototypes per subspace.
    pub fn num_prototypes(&self) -> usize {
        self.k
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.n_out
    }

    /// One LUT entry.
    #[inline]
    pub fn entry(&self, m: usize, k: usize, j: usize) -> i8 {
        self.entries[(m * self.k + k) * self.n_out + j]
    }

    /// The `K` entries a single hardware decoder stores: subspace `m`
    /// (pipeline stage), output `j` (decoder column). This is the image
    /// written into one 16×8 SRAM LUT.
    pub fn table(&self, m: usize, j: usize) -> Vec<i8> {
        (0..self.k).map(|k| self.entry(m, k, j)).collect()
    }

    /// Dequantisation scale of output column `j`.
    pub fn scale(&self, j: usize) -> f32 {
        self.scales[j]
    }

    /// Dequantisation bias of output column `j`.
    ///
    /// Exactly one entry per subspace is always selected, so each
    /// per-subspace table can be shifted by a constant with the sum of
    /// those constants re-added after accumulation — this keeps the INT8
    /// entries centred (small) even when the ridge-refit tables carry
    /// large common offsets that cancel across subspaces. The hardware
    /// applies it in the output stage together with the scale:
    /// `y = raw_sum · scale + bias`.
    pub fn bias(&self, j: usize) -> f32 {
        self.biases[j]
    }
}

/// A trained MADDNESS approximate matrix-multiply operator.
///
/// ```
/// use maddpipe_amm::linalg::Mat;
/// use maddpipe_amm::maddness::{MaddnessMatmul, MaddnessParams};
///
/// # fn main() -> Result<(), maddpipe_amm::error::MaddnessError> {
/// // 8-dimensional inputs, 2 subspaces of 4 dims, 4 prototypes each.
/// let params = MaddnessParams { levels: 2, subspace_len: 4, ..Default::default() };
/// let x: Vec<Vec<f32>> = (0..64)
///     .map(|i| (0..8).map(|j| ((i * 7 + j * 13) % 11) as f32 - 5.0).collect())
///     .collect();
/// let rows: Vec<&[f32]> = x.iter().map(|r| r.as_slice()).collect();
/// let x = Mat::from_rows(&rows);
/// let w = Mat::from_rows(&[
///     &[1.0, 0.0], &[0.5, -0.5], &[0.0, 1.0], &[-1.0, 0.25],
///     &[0.75, 0.0], &[0.0, -0.75], &[0.25, 0.5], &[-0.25, 1.0],
/// ]);
/// let op = MaddnessMatmul::train(&x, &w, params)?;
/// let approx = op.matmul(&x);
/// assert_eq!(approx.rows(), 64);
/// assert_eq!(approx.cols(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaddnessMatmul {
    params: MaddnessParams,
    d_in: usize,
    n_out: usize,
    encoders: Vec<BdtEncoder>,
    qencoders: Vec<QuantizedBdt>,
    input_scale: QuantScale,
    /// Full-dimensional prototypes, `(M·K) × d` (ridge refit lets a
    /// prototype extend beyond its own subspace, exactly as in MADDNESS).
    prototypes: Mat,
    lut_f32: Vec<Mat>,
    lut_i8: Int8Lut,
}

impl MaddnessMatmul {
    /// Trains the operator on calibration inputs `x` (`n × d`) for the
    /// weight matrix `w` (`d × n_out`).
    ///
    /// # Errors
    ///
    /// * [`MaddnessError::DimensionMismatch`] — `x`/`w` shapes disagree or
    ///   `d` is not a multiple of `subspace_len`;
    /// * [`MaddnessError::EmptyCalibration`] — no calibration rows;
    /// * errors from BDT training propagate.
    pub fn train(
        x: &Mat,
        w: &Mat,
        params: MaddnessParams,
    ) -> Result<MaddnessMatmul, MaddnessError> {
        if x.rows() == 0 {
            return Err(MaddnessError::EmptyCalibration);
        }
        if x.cols() != w.rows() {
            return Err(MaddnessError::DimensionMismatch {
                context: "weight rows vs input columns",
                expected: x.cols(),
                found: w.rows(),
            });
        }
        if params.subspace_len == 0 || !x.cols().is_multiple_of(params.subspace_len) {
            return Err(MaddnessError::BadConfig(format!(
                "input width {} is not a multiple of subspace length {}",
                x.cols(),
                params.subspace_len
            )));
        }
        let d = x.cols();
        let n_out = w.cols();
        let m = d / params.subspace_len;
        let k = 1usize << params.levels;

        // 1. Hash functions, one per subspace.
        let mut encoders = Vec::with_capacity(m);
        let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(m);
        for s in 0..m {
            let sub = x.col_range(s * params.subspace_len, (s + 1) * params.subspace_len);
            let enc = BdtEncoder::train(&sub, params.levels)?;
            assignments.push(enc.encode_batch(&sub));
            encoders.push(enc);
        }

        // 2. Prototypes: bucket means, optionally ridge-refit globally.
        let prototypes = if params.optimize_prototypes && m * k <= 4096 {
            ridge_prototypes(x, &assignments, m, k, params.ridge_lambda)?
        } else {
            bucket_mean_prototypes(x, &assignments, m, k, params.subspace_len)
        };

        // 3. LUTs: lut[m] = P_m · W, K × n_out per subspace.
        let mut lut_f32 = Vec::with_capacity(m);
        for s in 0..m {
            let mut block = Mat::zeros(k, d);
            for kk in 0..k {
                block
                    .row_mut(kk)
                    .copy_from_slice(prototypes.row(s * k + kk));
            }
            lut_f32.push(block.matmul(w));
        }

        // 4. INT8 LUT with per-output-column scale shared across
        // subspaces (the hardware accumulates raw bytes along `m`, so the
        // scale cannot vary per subspace). Two measures keep the 8-bit
        // resolution where the information is:
        //
        // * **centring** — each per-subspace table is shifted to zero
        //   mean, with the summed shifts re-added as a per-column bias
        //   after accumulation (exactly one entry per subspace is always
        //   selected, so this is lossless); without it, the ridge-refit
        //   tables' large mutually-cancelling offsets dominate the range;
        // * **MSE-optimal clipping** — the scale is chosen to minimise
        //   quantisation MSE, saturating rare outliers instead of
        //   coarsening every entry.
        let mut centred = lut_f32.clone();
        let mut biases = vec![0.0f32; n_out];
        for table in centred.iter_mut() {
            for j in 0..n_out {
                let mean: f32 = (0..k).map(|kk| table[(kk, j)]).sum::<f32>() / k as f32;
                for kk in 0..k {
                    table[(kk, j)] -= mean;
                }
                biases[j] += mean;
            }
        }
        let mut scales = vec![1.0f32; n_out];
        for (j, slot) in scales.iter_mut().enumerate() {
            let column: Vec<f32> = centred
                .iter()
                .flat_map(|table| (0..k).map(move |kk| table[(kk, j)]))
                .collect();
            *slot = mse_optimal_scale(&column);
        }
        let mut entries = Vec::with_capacity(m * k * n_out);
        for table in &centred {
            for kk in 0..k {
                for j in 0..n_out {
                    let q = (table[(kk, j)] / scales[j]).round().clamp(-127.0, 127.0);
                    entries.push(q as i8);
                }
            }
        }
        let lut_i8 = Int8Lut {
            m,
            k,
            n_out,
            entries,
            scales,
            biases,
        };

        // 5. Input quantiser and hardware-form encoders.
        let input_scale = QuantScale::fit_clipped(x.data());
        let qencoders = encoders.iter().map(|e| e.quantize(input_scale)).collect();

        Ok(MaddnessMatmul {
            params,
            d_in: d,
            n_out,
            encoders,
            qencoders,
            input_scale,
            prototypes,
            lut_f32,
            lut_i8,
        })
    }

    /// Input feature count `d`.
    pub fn in_features(&self) -> usize {
        self.d_in
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.n_out
    }

    /// Number of subspaces `M`.
    pub fn num_subspaces(&self) -> usize {
        self.encoders.len()
    }

    /// Prototypes per subspace `K`.
    pub fn num_prototypes(&self) -> usize {
        1 << self.params.levels
    }

    /// The training parameters.
    pub fn params(&self) -> &MaddnessParams {
        &self.params
    }

    /// The float hash functions.
    pub fn encoders(&self) -> &[BdtEncoder] {
        &self.encoders
    }

    /// The 8-bit deployed hash functions (programmed into the DLC trees).
    pub fn quantized_encoders(&self) -> &[QuantizedBdt] {
        &self.qencoders
    }

    /// The INT8 LUTs (programmed into the decoder SRAMs).
    pub fn lut_i8(&self) -> &Int8Lut {
        &self.lut_i8
    }

    /// The activation quantisation scale.
    pub fn input_scale(&self) -> QuantScale {
        self.input_scale
    }

    /// The full-dimensional prototype matrix (`(M·K) × d`).
    pub fn prototypes(&self) -> &Mat {
        &self.prototypes
    }

    /// Float-path encoding.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn encode(&self, x: &Mat) -> Encoding {
        self.check_width(x);
        let m = self.num_subspaces();
        let sl = self.params.subspace_len;
        let mut codes = Vec::with_capacity(x.rows() * m);
        for r in 0..x.rows() {
            let row = x.row(r);
            for (s, enc) in self.encoders.iter().enumerate() {
                codes.push(enc.encode_one(&row[s * sl..(s + 1) * sl]) as u8);
            }
        }
        Encoding {
            codes,
            rows: x.rows(),
            m,
        }
    }

    /// Hardware-path encoding: rows are quantised to INT8 first, then
    /// hashed with the integer-threshold trees (bit-exact DLC behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn encode_quantized(&self, x: &Mat) -> Encoding {
        self.check_width(x);
        let m = self.num_subspaces();
        let sl = self.params.subspace_len;
        let mut codes = Vec::with_capacity(x.rows() * m);
        let mut qrow = vec![0i8; self.d_in];
        for r in 0..x.rows() {
            for (q, &v) in qrow.iter_mut().zip(x.row(r)) {
                *q = self.input_scale.quantize(v);
            }
            for (s, enc) in self.qencoders.iter().enumerate() {
                codes.push(enc.encode_one(&qrow[s * sl..(s + 1) * sl]) as u8);
            }
        }
        Encoding {
            codes,
            rows: x.rows(),
            m,
        }
    }

    /// Float-path decode: gather + sum the float LUTs.
    pub fn decode_f32(&self, enc: &Encoding) -> Mat {
        self.check_encoding(enc);
        let mut out = Mat::zeros(enc.rows(), self.n_out);
        for r in 0..enc.rows() {
            let out_row = out.row_mut(r);
            for (s, table) in self.lut_f32.iter().enumerate() {
                let k = enc.code(r, s) as usize;
                for (o, &v) in out_row.iter_mut().zip(table.row(k)) {
                    *o += v;
                }
            }
        }
        out
    }

    /// Integer decode with exact 32-bit accumulation of raw LUT bytes —
    /// the reference the RTL simulation is checked against.
    pub fn decode_i32(&self, enc: &Encoding) -> Vec<Vec<i32>> {
        self.check_encoding(enc);
        let mut out = vec![vec![0i32; self.n_out]; enc.rows()];
        for (r, out_row) in out.iter_mut().enumerate() {
            for s in 0..enc.num_subspaces() {
                let k = enc.code(r, s) as usize;
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o += self.lut_i8.entry(s, k, j) as i32;
                }
            }
        }
        out
    }

    /// Integer decode with *wrapping 16-bit* accumulation — the exact
    /// semantics of the hardware's 16-bit carry-save chain and ripple-carry
    /// adder.
    pub fn decode_i16_wrapping(&self, enc: &Encoding) -> Vec<Vec<i16>> {
        self.check_encoding(enc);
        let mut out = vec![vec![0i16; self.n_out]; enc.rows()];
        for (r, out_row) in out.iter_mut().enumerate() {
            for s in 0..enc.num_subspaces() {
                let k = enc.code(r, s) as usize;
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = o.wrapping_add(self.lut_i8.entry(s, k, j) as i16);
                }
            }
        }
        out
    }

    /// The deployed approximate matmul: INT8 encode, integer decode,
    /// dequantise by the per-column LUT scale.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn matmul(&self, x: &Mat) -> Mat {
        let enc = self.encode_quantized(x);
        let ints = self.decode_i32(&enc);
        let mut out = Mat::zeros(x.rows(), self.n_out);
        for (r, int_row) in ints.iter().enumerate() {
            for (j, &v) in int_row.iter().enumerate() {
                out[(r, j)] = v as f32 * self.lut_i8.scale(j) + self.lut_i8.bias(j);
            }
        }
        out
    }

    /// The float "algorithm" path (no quantisation anywhere).
    pub fn matmul_f32(&self, x: &Mat) -> Mat {
        let enc = self.encode(x);
        self.decode_f32(&enc)
    }

    fn check_width(&self, x: &Mat) {
        assert_eq!(
            x.cols(),
            self.d_in,
            "input width {} does not match operator ({})",
            x.cols(),
            self.d_in
        );
    }

    fn check_encoding(&self, enc: &Encoding) {
        assert_eq!(
            enc.num_subspaces(),
            self.num_subspaces(),
            "encoding subspace count mismatch"
        );
    }
}

/// Finds the symmetric-INT8 scale minimising the quantisation MSE of
/// `values`, sweeping clipping factors from the max-abs scale downwards.
fn mse_optimal_scale(values: &[f32]) -> f32 {
    let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return 1.0;
    }
    let base = max / 127.0;
    let mut best_scale = base;
    let mut best_mse = f64::INFINITY;
    for factor in [1.0f32, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1] {
        let scale = base * factor;
        let mse: f64 = values
            .iter()
            .map(|&v| {
                let q = (v / scale).round().clamp(-127.0, 127.0);
                let err = (v - q * scale) as f64;
                err * err
            })
            .sum();
        if mse < best_mse {
            best_mse = mse;
            best_scale = scale;
        }
    }
    best_scale
}

/// Plain bucket-mean prototypes (no ridge): the mean of each hash bucket,
/// embedded in the full `d`-dimensional space (zero outside the subspace).
fn bucket_mean_prototypes(
    x: &Mat,
    assignments: &[Vec<usize>],
    m: usize,
    k: usize,
    subspace_len: usize,
) -> Mat {
    let d = x.cols();
    let mut protos = Mat::zeros(m * k, d);
    for (s, assign) in assignments.iter().enumerate() {
        let lo = s * subspace_len;
        let mut counts = vec![0usize; k];
        for (r, &code) in assign.iter().enumerate() {
            counts[code] += 1;
            for c in 0..subspace_len {
                protos[(s * k + code, lo + c)] += x[(r, lo + c)];
            }
        }
        for (code, &count) in counts.iter().enumerate() {
            if count > 0 {
                for c in 0..subspace_len {
                    protos[(s * k + code, lo + c)] /= count as f32;
                }
            }
        }
    }
    protos
}

/// Global ridge-regression prototype refit (MADDNESS §4.3): solve
/// `(GᵀG + λI)·P = Gᵀ·X`, where `G` is the `n × (M·K)` one-hot bucket
/// indicator. The refit prototypes may extend outside their subspace,
/// compensating quantisation error elsewhere; LUT construction absorbs
/// them offline, so hardware cost is unchanged.
fn ridge_prototypes(
    x: &Mat,
    assignments: &[Vec<usize>],
    m: usize,
    k: usize,
    lambda: f32,
) -> Result<Mat, MaddnessError> {
    let n = x.rows();
    let mk = m * k;
    let lambda = if lambda > 0.0 { lambda } else { 1e-4 };
    // GᵀG: co-occurrence counts of bucket pairs. Build densely — mk ≤ 4096.
    let mut gtg = Mat::zeros(mk, mk);
    for r in 0..n {
        // Indices of the M active buckets of row r.
        for (s1, a1) in assignments.iter().enumerate() {
            let i = s1 * k + a1[r];
            for (s2, a2) in assignments.iter().enumerate() {
                let j = s2 * k + a2[r];
                gtg[(i, j)] += 1.0;
            }
        }
    }
    for i in 0..mk {
        gtg[(i, i)] += lambda;
    }
    // GᵀX.
    let mut gtx = Mat::zeros(mk, x.cols());
    for r in 0..n {
        for (s, assign) in assignments.iter().enumerate() {
            let i = s * k + assign[r];
            for c in 0..x.cols() {
                gtx[(i, c)] += x[(r, c)];
            }
        }
    }
    cholesky_solve(&gtg, &gtx).map_err(|e| MaddnessError::RidgeFailed(e.to_string()))
}

/// A matrix-multiply operator: either exact or approximate. The benchmark
/// harness and the CNN substrate treat all implementations uniformly.
pub trait AmmOperator: fmt::Debug {
    /// Input feature count.
    fn in_features(&self) -> usize;

    /// Output feature count.
    fn out_features(&self) -> usize;

    /// Computes (an approximation of) `x · W`.
    fn apply(&self, x: &Mat) -> Mat;

    /// Short display name for reports.
    fn op_name(&self) -> &'static str;
}

impl AmmOperator for MaddnessMatmul {
    fn in_features(&self) -> usize {
        self.in_features()
    }

    fn out_features(&self) -> usize {
        self.out_features()
    }

    fn apply(&self, x: &Mat) -> Mat {
        self.matmul(x)
    }

    fn op_name(&self) -> &'static str {
        "maddness-int8"
    }
}

/// The exact floating-point matmul baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactMatmul {
    w: Mat,
}

impl ExactMatmul {
    /// Wraps a weight matrix (`d × n_out`).
    pub fn new(w: Mat) -> ExactMatmul {
        ExactMatmul { w }
    }

    /// The wrapped weights.
    pub fn weights(&self) -> &Mat {
        &self.w
    }
}

impl AmmOperator for ExactMatmul {
    fn in_features(&self) -> usize {
        self.w.rows()
    }

    fn out_features(&self) -> usize {
        self.w.cols()
    }

    fn apply(&self, x: &Mat) -> Mat {
        x.matmul(&self.w)
    }

    fn op_name(&self) -> &'static str {
        "exact-f32"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::nmse;

    /// Structured calibration data: rows cluster along each subspace.
    fn calib(n: usize, d: usize) -> Mat {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let cluster = ((i * (j + 3)) % 7) as f32;
                        cluster - 3.0 + 0.05 * ((i + j) % 5) as f32
                    })
                    .collect()
            })
            .collect();
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&slices)
    }

    fn weights(d: usize, n_out: usize) -> Mat {
        let mut w = Mat::zeros(d, n_out);
        for r in 0..d {
            for c in 0..n_out {
                w[(r, c)] = (((r * 5 + c * 3) % 9) as f32 - 4.0) / 4.0;
            }
        }
        w
    }

    fn small_params() -> MaddnessParams {
        MaddnessParams {
            levels: 3,
            subspace_len: 4,
            optimize_prototypes: true,
            ridge_lambda: 1.0,
        }
    }

    #[test]
    fn train_and_shapes() {
        let x = calib(128, 8);
        let w = weights(8, 3);
        let op = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        assert_eq!(op.num_subspaces(), 2);
        assert_eq!(op.num_prototypes(), 8);
        assert_eq!(op.in_features(), 8);
        assert_eq!(op.out_features(), 3);
        let y = op.matmul(&x);
        assert_eq!((y.rows(), y.cols()), (128, 3));
    }

    #[test]
    fn approximation_beats_zero_baseline_decisively() {
        let x = calib(256, 8);
        let w = weights(8, 4);
        let op = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        let exact = x.matmul(&w);
        let approx = op.matmul(&x);
        let e = nmse(&exact, &approx);
        assert!(e < 0.15, "nmse {e} too high — approximation broken");
    }

    #[test]
    fn ridge_refit_improves_over_bucket_means() {
        let x = calib(256, 8);
        let w = weights(8, 4);
        let exact = x.matmul(&w);
        let plain = MaddnessMatmul::train(
            &x,
            &w,
            MaddnessParams {
                optimize_prototypes: false,
                ..small_params()
            },
        )
        .unwrap();
        let ridge = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        let e_plain = nmse(&exact, &plain.matmul_f32(&x));
        let e_ridge = nmse(&exact, &ridge.matmul_f32(&x));
        assert!(
            e_ridge <= e_plain + 1e-9,
            "ridge {e_ridge} must not be worse than means {e_plain}"
        );
    }

    #[test]
    fn int_path_tracks_float_path() {
        let x = calib(128, 8);
        let w = weights(8, 3);
        let op = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        let f = op.matmul_f32(&x);
        let q = op.matmul(&x);
        let e = nmse(&f, &q);
        assert!(e < 0.05, "int8 path diverges from float path: nmse {e}");
    }

    #[test]
    fn decode_i16_equals_i32_when_in_range() {
        let x = calib(64, 8);
        let w = weights(8, 3);
        let op = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        let enc = op.encode_quantized(&x);
        let i32s = op.decode_i32(&enc);
        let i16s = op.decode_i16_wrapping(&enc);
        for (r32, r16) in i32s.iter().zip(&i16s) {
            for (&a, &b) in r32.iter().zip(r16) {
                // M = 2 subspaces × |entry| ≤ 127 → always in i16 range.
                assert_eq!(a, b as i32);
            }
        }
    }

    #[test]
    fn lut_table_matches_entries() {
        let x = calib(64, 8);
        let w = weights(8, 3);
        let op = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        let lut = op.lut_i8();
        let t = lut.table(1, 2);
        assert_eq!(t.len(), lut.num_prototypes());
        for (k, &v) in t.iter().enumerate() {
            assert_eq!(v, lut.entry(1, k, 2));
        }
    }

    #[test]
    fn error_cases() {
        let x = calib(16, 8);
        let w = weights(9, 2); // wrong row count
        assert!(matches!(
            MaddnessMatmul::train(&x, &w, small_params()),
            Err(MaddnessError::DimensionMismatch { .. })
        ));
        let w = weights(8, 2);
        let bad = MaddnessParams {
            subspace_len: 3, // 8 % 3 ≠ 0
            ..small_params()
        };
        assert!(matches!(
            MaddnessMatmul::train(&x, &w, bad),
            Err(MaddnessError::BadConfig(_))
        ));
        assert!(matches!(
            MaddnessMatmul::train(&Mat::zeros(0, 8), &w, small_params()),
            Err(MaddnessError::EmptyCalibration)
        ));
    }

    #[test]
    fn exact_operator_is_exact() {
        let x = calib(16, 8);
        let w = weights(8, 2);
        let op = ExactMatmul::new(w.clone());
        assert_eq!(op.apply(&x), x.matmul(&w));
        assert_eq!(op.op_name(), "exact-f32");
        assert_eq!(op.in_features(), 8);
        assert_eq!(op.out_features(), 2);
    }

    #[test]
    fn encoding_accessors() {
        let x = calib(8, 8);
        let w = weights(8, 2);
        let op = MaddnessMatmul::train(&x, &w, small_params()).unwrap();
        let enc = op.encode_quantized(&x);
        assert_eq!(enc.rows(), 8);
        assert_eq!(enc.num_subspaces(), 2);
        assert_eq!(enc.row(3).len(), 2);
        assert_eq!(enc.row(3)[1], enc.code(3, 1));
        assert!(enc
            .row(3)
            .iter()
            .all(|&c| (c as usize) < op.num_prototypes()));
    }

    #[test]
    fn amm_trait_object_safety() {
        let x = calib(32, 8);
        let w = weights(8, 2);
        let ops: Vec<Box<dyn AmmOperator>> = vec![
            Box::new(ExactMatmul::new(w.clone())),
            Box::new(MaddnessMatmul::train(&x, &w, small_params()).unwrap()),
        ];
        for op in &ops {
            let y = op.apply(&x);
            assert_eq!(y.cols(), 2, "{}", op.op_name());
        }
    }
}
