//! Minimal dense linear algebra: row-major `f32` matrices, products, and a
//! Cholesky solver for the ridge-regression prototype optimisation.
//!
//! Deliberately small — just what MADDNESS training needs — and written for
//! clarity over peak FLOPS; the accelerator itself never multiplies.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
///
/// ```
/// use maddpipe_amm::linalg::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Mat {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot be a {rows}×{cols} matrix",
            data.len()
        );
        Mat { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Mat {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} ≠ {cols}", r.len());
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One column, copied out.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix product `self · rhs` with `f64` accumulation.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            self.cols, rhs.rows,
            "cannot multiply {}×{} by {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)] as f64;
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(lhs_row) {
                    *o = ((*o as f64) + a * b as f64) as f32;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Mat) -> Mat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch in subtraction"
        );
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Copies a column range into a new matrix (used to slice subspaces).
    pub fn col_range(&self, start: usize, end: usize) -> Mat {
        assert!(start <= end && end <= self.cols, "bad column range");
        let mut out = Mat::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}×{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let cells: Vec<String> = self.row(r)[..self.cols.min(8)]
                .iter()
                .map(|x| format!("{x:>9.4}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// Solves the symmetric positive-definite system `A·X = B` by Cholesky
/// decomposition (`A = L·Lᵀ`), in `f64`.
///
/// Used for the ridge-regression prototype refit, where
/// `A = GᵀG + λI` is SPD by construction for `λ > 0`.
///
/// # Errors
///
/// Returns [`NotSpdError`] if a non-positive pivot is encountered.
///
/// ```
/// use maddpipe_amm::linalg::{cholesky_solve, Mat};
///
/// let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let b = Mat::from_rows(&[&[2.0], &[1.0]]);
/// let x = cholesky_solve(&a, &b).unwrap();
/// // Verify A·x = b.
/// let r = a.matmul(&x);
/// assert!((r[(0, 0)] - 2.0).abs() < 1e-5 && (r[(1, 0)] - 1.0).abs() < 1e-5);
/// ```
pub fn cholesky_solve(a: &Mat, b: &Mat) -> Result<Mat, NotSpdError> {
    assert_eq!(a.rows(), a.cols(), "A must be square");
    assert_eq!(a.rows(), b.rows(), "A and B row counts must agree");
    let n = a.rows();
    // Factor A = L·Lᵀ in f64.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)] as f64;
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NotSpdError {
                        pivot: i,
                        value: sum,
                    });
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Solve L·Y = B (forward), then Lᵀ·X = Y (backward), per column of B.
    let mut x = Mat::zeros(n, b.cols());
    for c in 0..b.cols() {
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut sum = b[(i, c)] as f64;
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * (x[(k, c)] as f64);
            }
            x[(i, c)] = (sum / l[i * n + i]) as f32;
        }
    }
    Ok(x)
}

/// Error returned by [`cholesky_solve`] when the matrix is not positive
/// definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotSpdError {
    /// Index of the failing pivot.
    pub pivot: usize,
    /// The (non-positive) pivot value encountered.
    pub value: f64,
}

impl fmt::Display for NotSpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} = {:.3e})",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotSpdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Mat::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn col_range_slices_subspaces() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let s = a.col_range(1, 3);
        assert_eq!(s, Mat::from_rows(&[&[2.0, 3.0], &[6.0, 7.0]]));
    }

    #[test]
    fn frobenius_norm() {
        let a = Mat::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // Build SPD A = MᵀM + I for a random-ish M.
        let m = Mat::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]);
        let mut a = m.transpose().matmul(&m);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let b = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let x = cholesky_solve(&a, &b).unwrap();
        let r = a.matmul(&x).sub(&b);
        assert!(r.frobenius() < 1e-4, "residual {}", r.frobenius());
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Mat::from_rows(&[&[1.0], &[1.0]]);
        let err = cholesky_solve(&a, &b).unwrap_err();
        assert!(err.to_string().contains("not positive definite"));
    }

    #[test]
    #[should_panic(expected = "cannot multiply")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Mat::identity(2);
        assert!(a.to_string().contains("Mat 2×2"));
    }
}
