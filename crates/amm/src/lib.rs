//! # maddpipe-amm
//!
//! The MADDNESS approximate-matrix-multiplication algorithm (Blalock &
//! Guttag 2021) and its relatives, as used by the DAC 2025 accelerator
//! paper this workspace reproduces.
//!
//! * [`linalg`] — minimal dense matrices + Cholesky solve.
//! * [`quant`] — symmetric INT8 quantisation.
//! * [`bdt`] — the balanced binary-decision-tree hash function (training
//!   and the deployed 8-bit form that mirrors the DLC hardware).
//! * [`kmeans`] / [`encoders`] — the alternative encoding functions of
//!   LUT-NN (Euclidean) and PECAN (Manhattan).
//! * [`maddness`] — the full operator: train → encode → LUT decode, with a
//!   float algorithm path and a bit-exact hardware (INT8/i16-wrap) path.
//! * [`metrics`] — NMSE, argmax agreement, etc.
//!
//! ## Quick start
//!
//! ```
//! use maddpipe_amm::prelude::*;
//!
//! # fn main() -> Result<(), MaddnessError> {
//! // Calibration inputs (n × d) and weights (d × n_out).
//! let rows: Vec<Vec<f32>> = (0..128)
//!     .map(|i| (0..8).map(|j| ((i + 2 * j) % 10) as f32 - 5.0).collect())
//!     .collect();
//! let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
//! let x = Mat::from_rows(&refs);
//! let mut w = Mat::zeros(8, 4);
//! for r in 0..8 { for c in 0..4 { w[(r, c)] = (r as f32 - c as f32) / 8.0; } }
//!
//! let params = MaddnessParams { levels: 3, subspace_len: 4, ..Default::default() };
//! let op = MaddnessMatmul::train(&x, &w, params)?;
//! let approx = op.matmul(&x);
//! let exact = x.matmul(&w);
//! assert!(nmse(&exact, &approx) < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdt;
pub mod encoders;
pub mod error;
pub mod kmeans;
pub mod linalg;
pub mod maddness;
pub mod metrics;
pub mod quant;

pub use bdt::{BdtEncoder, QuantizedBdt};
pub use error::MaddnessError;
pub use linalg::Mat;
pub use maddness::{AmmOperator, Encoding, ExactMatmul, Int8Lut, MaddnessMatmul, MaddnessParams};
pub use quant::QuantScale;

/// Common imports.
pub mod prelude {
    pub use crate::bdt::{BdtEncoder, QuantizedBdt};
    pub use crate::encoders::{CentroidEncoder, SubspaceEncoder};
    pub use crate::error::MaddnessError;
    pub use crate::kmeans::{kmeans, Distance};
    pub use crate::linalg::Mat;
    pub use crate::maddness::{
        AmmOperator, Encoding, ExactMatmul, Int8Lut, MaddnessMatmul, MaddnessParams,
    };
    pub use crate::metrics::{argmax, argmax_agreement, max_abs_error, nmse};
    pub use crate::quant::QuantScale;
}
