//! The MADDNESS balanced binary decision tree (BDT) hash function.
//!
//! Encoding a subvector means walking a 4-level tree: at level `l` the
//! element at `split_dims[l]` is compared against the current node's
//! threshold, and the comparison steers left/right. The 15 node thresholds
//! and 4 split indices are exactly what the paper's encoder stores in its 15
//! dynamic-logic comparators (Fig. 4 A) — one DLC per node, one level per
//! tournament round, with the compared element fixed per level.
//!
//! Training follows MADDNESS (Blalock & Guttag 2021): levels are grown
//! greedily; at each level one split dimension is chosen *shared across all
//! nodes of the level* (that is what makes the hardware's "compare element
//! `a_l` at level `l`" layout possible), and each node gets its own optimal
//! threshold, found by scanning the sorted candidate values with prefix-sum
//! SSE bookkeeping.

use crate::error::MaddnessError;
use crate::linalg::Mat;
use crate::quant::QuantScale;
use core::fmt;

/// A trained balanced binary decision tree encoder for one subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct BdtEncoder {
    levels: usize,
    split_dims: Vec<usize>,
    /// Heap-ordered node thresholds: node 0 is the root, node `i` has
    /// children `2i+1` (left, `<`) and `2i+2` (right, `≥`).
    thresholds: Vec<f32>,
}

impl BdtEncoder {
    /// Trains a `levels`-deep tree on calibration rows (one subvector per
    /// row).
    ///
    /// # Errors
    ///
    /// Returns [`MaddnessError::EmptyCalibration`] for an empty matrix and
    /// [`MaddnessError::BadConfig`] for zero levels or zero-width rows.
    pub fn train(data: &Mat, levels: usize) -> Result<BdtEncoder, MaddnessError> {
        if levels == 0 || levels > 8 {
            return Err(MaddnessError::BadConfig(format!(
                "BDT levels must be in 1..=8, got {levels}"
            )));
        }
        if data.rows() == 0 {
            return Err(MaddnessError::EmptyCalibration);
        }
        if data.cols() == 0 {
            return Err(MaddnessError::BadConfig(
                "subvectors must have at least one dimension".into(),
            ));
        }
        let n = data.rows();
        let d = data.cols();
        let n_internal = (1usize << levels) - 1;
        let mut thresholds = vec![0.0f32; n_internal];
        let mut split_dims = Vec::with_capacity(levels);
        // Node assignment of every row; starts at the root.
        let mut assignment = vec![0usize; n];

        for level in 0..levels {
            let first = (1usize << level) - 1;
            let count = 1usize << level;
            // Gather row indices per node at this level.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); count];
            for (row, &node) in assignment.iter().enumerate() {
                buckets[node - first].push(row);
            }
            // Choose the dimension that minimises the summed two-piece SSE
            // across all buckets of this level.
            let mut best_dim = 0usize;
            let mut best_loss = f64::INFINITY;
            let mut best_thresholds = vec![0.0f32; count];
            for dim in 0..d {
                let mut loss = 0.0f64;
                let mut ts = vec![0.0f32; count];
                for (b, rows) in buckets.iter().enumerate() {
                    let (t, l) = optimal_split(data, rows, dim);
                    ts[b] = t;
                    loss += l;
                }
                if loss < best_loss {
                    best_loss = loss;
                    best_dim = dim;
                    best_thresholds = ts;
                }
            }
            split_dims.push(best_dim);
            for (b, &t) in best_thresholds.iter().enumerate() {
                thresholds[first + b] = t;
            }
            // Advance assignments one level down.
            for (row, node) in assignment.iter_mut().enumerate() {
                let t = thresholds[*node];
                let go_right = data[(row, best_dim)] >= t;
                *node = 2 * *node + 1 + usize::from(go_right);
            }
        }
        Ok(BdtEncoder {
            levels,
            split_dims,
            thresholds,
        })
    }

    /// Builds an encoder from explicit parameters (e.g. when loading a
    /// model trained elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`MaddnessError::BadConfig`] when the threshold count does
    /// not equal `2^levels − 1` or the split-dimension count differs from
    /// `levels`.
    pub fn from_parts(
        split_dims: Vec<usize>,
        thresholds: Vec<f32>,
    ) -> Result<BdtEncoder, MaddnessError> {
        let levels = split_dims.len();
        if levels == 0 || thresholds.len() != (1usize << levels) - 1 {
            return Err(MaddnessError::BadConfig(format!(
                "expected 2^{levels}-1 thresholds, got {}",
                thresholds.len()
            )));
        }
        Ok(BdtEncoder {
            levels,
            split_dims,
            thresholds,
        })
    }

    /// Tree depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of leaves / prototypes (`2^levels`).
    pub fn num_leaves(&self) -> usize {
        1 << self.levels
    }

    /// The element index compared at each level.
    pub fn split_dims(&self) -> &[usize] {
        &self.split_dims
    }

    /// Heap-ordered node thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Encodes one subvector to its leaf index.
    ///
    /// # Panics
    ///
    /// Panics if the subvector is shorter than the largest split dimension.
    pub fn encode_one(&self, sub: &[f32]) -> usize {
        let mut node = 0usize;
        for level in 0..self.levels {
            let x = sub[self.split_dims[level]];
            let go_right = x >= self.thresholds[node];
            node = 2 * node + 1 + usize::from(go_right);
        }
        node - (self.num_leaves() - 1)
    }

    /// Encodes every row of a matrix.
    pub fn encode_batch(&self, data: &Mat) -> Vec<usize> {
        (0..data.rows())
            .map(|r| self.encode_one(data.row(r)))
            .collect()
    }

    /// Quantises the thresholds for 8-bit hardware deployment.
    ///
    /// The input scale must be the same scale used to quantise activations.
    /// Thresholds use ceiling quantisation
    /// ([`QuantScale::quantize_threshold`]) so that `x_q ≥ t_q ⇔ x ≥ t`
    /// holds *exactly* for every activation on the quantisation lattice —
    /// in particular for the zero atom that post-ReLU data carries.
    pub fn quantize(&self, input_scale: QuantScale) -> QuantizedBdt {
        QuantizedBdt {
            levels: self.levels,
            split_dims: self.split_dims.clone(),
            thresholds: self
                .thresholds
                .iter()
                .map(|&t| input_scale.quantize_threshold(t))
                .collect(),
        }
    }
}

impl fmt::Display for BdtEncoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BDT: {} levels, split dims {:?}, {} leaves",
            self.levels,
            self.split_dims,
            self.num_leaves()
        )
    }
}

/// The deployed 8-bit form of a [`BdtEncoder`]: integer thresholds compared
/// against integer activations, exactly as the DLC hardware does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedBdt {
    levels: usize,
    split_dims: Vec<usize>,
    thresholds: Vec<i8>,
}

impl QuantizedBdt {
    /// Tree depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of leaves (`2^levels`).
    pub fn num_leaves(&self) -> usize {
        1 << self.levels
    }

    /// The element index compared at each level.
    pub fn split_dims(&self) -> &[usize] {
        &self.split_dims
    }

    /// Heap-ordered integer thresholds (what gets programmed into the DLCs).
    pub fn thresholds(&self) -> &[i8] {
        &self.thresholds
    }

    /// Encodes one quantised subvector; mirrors the DLC tournament bit for
    /// bit: at each level, compare and descend.
    pub fn encode_one(&self, sub: &[i8]) -> usize {
        let mut node = 0usize;
        for level in 0..self.levels {
            let x = sub[self.split_dims[level]];
            let go_right = x >= self.thresholds[node];
            node = 2 * node + 1 + usize::from(go_right);
        }
        node - (self.num_leaves() - 1)
    }

    /// The sequence of `(dim, threshold, went_right)` decisions for one
    /// input — the activation path through the DLC tree, used by the RTL
    /// model to know which comparators fire.
    pub fn decision_path(&self, sub: &[i8]) -> Vec<(usize, i8, bool)> {
        let mut node = 0usize;
        let mut path = Vec::with_capacity(self.levels);
        for level in 0..self.levels {
            let dim = self.split_dims[level];
            let t = self.thresholds[node];
            let go_right = sub[dim] >= t;
            path.push((dim, t, go_right));
            node = 2 * node + 1 + usize::from(go_right);
        }
        path
    }
}

/// Finds the threshold that best splits `rows` of `data` along `dim`,
/// returning `(threshold, resulting_sse)`.
///
/// The SSE is evaluated over *all* dimensions of the subvector (the split
/// steers whole rows), using prefix sums over the rows sorted by the split
/// dimension — O(n·d) after the sort.
fn optimal_split(data: &Mat, rows: &[usize], dim: usize) -> (f32, f64) {
    let n = rows.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let d = data.cols();
    if n == 1 {
        // A single row: any threshold ≤ its value keeps it in the right
        // child; SSE is zero either way.
        return (data[(rows[0], dim)], 0.0);
    }
    let mut order: Vec<usize> = rows.to_vec();
    order.sort_by(|&a, &b| {
        data[(a, dim)]
            .partial_cmp(&data[(b, dim)])
            .unwrap_or(core::cmp::Ordering::Equal)
    });
    // Prefix sums: per-dimension value sums and the scalar sum of squared
    // norms. SSE of a group = Σ‖x‖² − Σ_d (Σ x_d)²/n.
    let mut prefix_sum = vec![0.0f64; (n + 1) * d];
    let mut prefix_sq = vec![0.0f64; n + 1];
    for (i, &row) in order.iter().enumerate() {
        let base = i * d;
        let next = (i + 1) * d;
        let mut sq = 0.0f64;
        for c in 0..d {
            let v = data[(row, c)] as f64;
            prefix_sum[next + c] = prefix_sum[base + c] + v;
            sq += v * v;
        }
        prefix_sq[i + 1] = prefix_sq[i] + sq;
    }
    let group_sse = |lo: usize, hi: usize| -> f64 {
        // Rows order[lo..hi].
        let count = (hi - lo) as f64;
        if count == 0.0 {
            return 0.0;
        }
        let sq = prefix_sq[hi] - prefix_sq[lo];
        let mut mean_term = 0.0f64;
        for c in 0..d {
            let s = prefix_sum[hi * d + c] - prefix_sum[lo * d + c];
            mean_term += s * s;
        }
        (sq - mean_term / count).max(0.0)
    };
    let mut best_loss = f64::INFINITY;
    let mut best_split = n / 2;
    for i in 1..n {
        // Cannot split between equal values: the comparison x ≥ t cannot
        // separate them.
        if data[(order[i - 1], dim)] == data[(order[i], dim)] {
            continue;
        }
        let loss = group_sse(0, i) + group_sse(i, n);
        if loss < best_loss {
            best_loss = loss;
            best_split = i;
        }
    }
    if best_loss.is_infinite() {
        // All values equal along this dim: no split possible; threshold
        // above the value keeps everything in the left child.
        let v = data[(order[0], dim)];
        return (v + 1.0, group_sse(0, n));
    }
    let lo = data[(order[best_split - 1], dim)];
    let hi = data[(order[best_split], dim)];
    (0.5 * (lo + hi), best_loss)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Training data with an obvious two-cluster structure along dim 1.
    fn clustered() -> Mat {
        let mut rows: Vec<Vec<f32>> = Vec::new();
        for i in 0..32 {
            let c = if i % 2 == 0 { -4.0 } else { 4.0 };
            rows.push(vec![0.1 * (i as f32 % 5.0), c + 0.01 * i as f32, 0.0]);
        }
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Mat::from_rows(&slices)
    }

    #[test]
    fn training_picks_the_informative_dimension() {
        let enc = BdtEncoder::train(&clustered(), 1).unwrap();
        assert_eq!(enc.split_dims(), &[1], "dim 1 carries all the variance");
        // The two clusters land in different leaves.
        let a = enc.encode_one(&[0.0, -4.0, 0.0]);
        let b = enc.encode_one(&[0.0, 4.0, 0.0]);
        assert_ne!(a, b);
    }

    #[test]
    fn four_levels_give_sixteen_leaves() {
        // Spread data across dim 0 so every level can split.
        let rows: Vec<Vec<f32>> = (0..256).map(|i| vec![i as f32, 0.0]).collect();
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = Mat::from_rows(&slices);
        let enc = BdtEncoder::train(&data, 4).unwrap();
        assert_eq!(enc.num_leaves(), 16);
        let codes = enc.encode_batch(&data);
        let mut counts = [0usize; 16];
        for c in codes {
            counts[c] += 1;
        }
        // Uniform data ⇒ roughly balanced leaves (16 each ±tolerance).
        for (leaf, &c) in counts.iter().enumerate() {
            assert!((8..=32).contains(&c), "leaf {leaf} holds {c} rows");
        }
    }

    #[test]
    fn encode_is_deterministic_and_in_range() {
        let data = clustered();
        let enc = BdtEncoder::train(&data, 3).unwrap();
        let once = enc.encode_batch(&data);
        let twice = enc.encode_batch(&data);
        assert_eq!(once, twice);
        assert!(once.iter().all(|&c| c < enc.num_leaves()));
    }

    #[test]
    fn constant_data_trains_without_panic() {
        let data = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        let enc = BdtEncoder::train(&data, 2).unwrap();
        // Everything hashes somewhere consistent.
        let c = enc.encode_one(&[1.0, 1.0]);
        assert!(c < 4);
    }

    #[test]
    fn single_row_trains() {
        let data = Mat::from_rows(&[&[2.0, -1.0]]);
        let enc = BdtEncoder::train(&data, 2).unwrap();
        let _ = enc.encode_one(&[2.0, -1.0]);
    }

    #[test]
    fn rejects_bad_configs() {
        let data = Mat::from_rows(&[&[1.0]]);
        assert!(matches!(
            BdtEncoder::train(&data, 0),
            Err(MaddnessError::BadConfig(_))
        ));
        assert!(matches!(
            BdtEncoder::train(&Mat::zeros(0, 3), 2),
            Err(MaddnessError::EmptyCalibration)
        ));
        assert!(matches!(
            BdtEncoder::from_parts(vec![0, 1], vec![0.0]),
            Err(MaddnessError::BadConfig(_))
        ));
    }

    #[test]
    fn from_parts_reproduces_manual_tree() {
        // Depth 2: root splits dim 0 at 0.0; level 1 splits dim 1 at -1.0 / 1.0.
        let enc = BdtEncoder::from_parts(vec![0, 1], vec![0.0, -1.0, 1.0]).unwrap();
        assert_eq!(enc.encode_one(&[-5.0, -5.0]), 0); // left, left
        assert_eq!(enc.encode_one(&[-5.0, 0.0]), 1); // left, right (0 ≥ −1)
        assert_eq!(enc.encode_one(&[5.0, 0.0]), 2); // right, left (0 < 1)
        assert_eq!(enc.encode_one(&[5.0, 2.0]), 3); // right, right
    }

    #[test]
    fn quantized_tree_matches_float_tree_off_boundary() {
        let data = clustered();
        let enc = BdtEncoder::train(&data, 2).unwrap();
        let scale = QuantScale::fit(data.data());
        let qenc = enc.quantize(scale);
        let mut agree = 0usize;
        for r in 0..data.rows() {
            let f = enc.encode_one(data.row(r));
            let q_in: Vec<i8> = data.row(r).iter().map(|&x| scale.quantize(x)).collect();
            let q = qenc.encode_one(&q_in);
            if f == q {
                agree += 1;
            }
        }
        // Quantisation can flip rows that sit exactly on a threshold; the
        // overwhelming majority must agree.
        assert!(agree * 10 >= data.rows() * 9, "{agree}/{}", data.rows());
    }

    #[test]
    fn decision_path_has_one_entry_per_level() {
        let enc = BdtEncoder::from_parts(vec![0, 1, 0], vec![0.0; 7]).unwrap();
        let q = enc.quantize(QuantScale::UNIT);
        let path = q.decision_path(&[5, -3]);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], (0, 0, true));
        assert_eq!(path[1].0, 1);
    }

    #[test]
    fn optimal_split_separates_two_clusters_exactly() {
        let data = Mat::from_rows(&[&[-3.0], &[-2.9], &[3.0], &[3.1]]);
        let rows = [0usize, 1, 2, 3];
        let (t, loss) = optimal_split(&data, &rows, 0);
        assert!((-2.9..=3.0).contains(&t), "threshold {t}");
        assert!(loss < 0.02, "two tight clusters ⇒ tiny SSE, got {loss}");
    }
}
