//! Symmetric INT8 quantisation.
//!
//! The accelerator stores LUT entries and compares activations at 8-bit
//! integer precision ("we employed an 8-bit integer precision", §III-A), so
//! the algorithm side provides a faithful symmetric-linear quantiser:
//! `q = clamp(round(x / scale), -127, 127)`.

use core::fmt;

/// A symmetric linear quantisation scale (`x ≈ q · scale`).
///
/// ```
/// use maddpipe_amm::quant::QuantScale;
///
/// let s = QuantScale::fit(&[0.5, -2.0, 1.0]);
/// let q = s.quantize(-2.0);
/// assert_eq!(q, -127);
/// assert!((s.dequantize(q) + 2.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScale {
    scale: f32,
}

impl QuantScale {
    /// Identity-ish scale for already-integer data.
    pub const UNIT: QuantScale = QuantScale { scale: 1.0 };

    /// Creates a scale directly.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn new(scale: f32) -> QuantScale {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantisation scale must be positive and finite, got {scale}"
        );
        QuantScale { scale }
    }

    /// Fits the scale that maps the largest magnitude in `values` to ±127.
    ///
    /// All-zero (or empty) input yields a unit scale so that quantisation
    /// stays well-defined.
    pub fn fit(values: &[f32]) -> QuantScale {
        let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max == 0.0 || !max.is_finite() {
            QuantScale::UNIT
        } else {
            QuantScale { scale: max / 127.0 }
        }
    }

    /// Fits the MSE-optimal *clipping* scale: sweeps clipping factors below
    /// the max-abs scale and keeps the one minimising quantisation MSE.
    ///
    /// Activation tensors routinely carry a handful of outliers; a plain
    /// max-abs fit lets them coarsen every other value (and, in the MADDNESS
    /// pipeline, flip comparator decisions whose thresholds sit closer
    /// together than one quantisation step). Saturating the outliers is the
    /// standard remedy.
    pub fn fit_clipped(values: &[f32]) -> QuantScale {
        let max = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max == 0.0 || !max.is_finite() {
            return QuantScale::UNIT;
        }
        let base = max / 127.0;
        let mut best = (base, f64::INFINITY);
        for factor in [1.0f32, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1] {
            let scale = base * factor;
            let mse: f64 = values
                .iter()
                .map(|&v| {
                    let q = (v / scale).round().clamp(-127.0, 127.0);
                    let e = (v - q * scale) as f64;
                    e * e
                })
                .sum();
            if mse < best.1 {
                best = (scale, mse);
            }
        }
        QuantScale { scale: best.0 }
    }

    /// The multiplicative step size.
    pub fn scale(self) -> f32 {
        self.scale
    }

    /// Quantises one value.
    #[inline]
    pub fn quantize(self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Quantises a *comparison threshold* with ceiling semantics.
    ///
    /// For any value `x` lying on the quantisation lattice (`x = k·scale`),
    /// `x ≥ t ⇔ k ≥ ⌈t/scale⌉` holds exactly — so decision boundaries
    /// survive quantisation for lattice-valued data. This matters enormously
    /// for post-ReLU activations, which carry a large probability atom at
    /// exactly 0: a threshold in `(0, scale/2)` would *round* to 0 and flip
    /// every zero-valued comparison to the "≥" side.
    #[inline]
    pub fn quantize_threshold(self, t: f32) -> i8 {
        let q = (t / self.scale).ceil();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantises one value.
    #[inline]
    pub fn dequantize(self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantises a slice.
    pub fn quantize_all(self, xs: &[f32]) -> Vec<i8> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Dequantises a slice.
    pub fn dequantize_all(self, qs: &[i8]) -> Vec<f32> {
        qs.iter().map(|&q| self.dequantize(q)).collect()
    }
}

impl Default for QuantScale {
    fn default() -> QuantScale {
        QuantScale::UNIT
    }
}

impl fmt::Display for QuantScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "int8 scale {:.6}", self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_maps_extreme_to_127() {
        let s = QuantScale::fit(&[3.0, -6.0, 1.5]);
        assert_eq!(s.quantize(-6.0), -127);
        assert_eq!(s.quantize(6.0), 127);
        assert_eq!(s.quantize(0.0), 0);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let s = QuantScale::fit(&[1.0]);
        for i in -100..=100 {
            let x = i as f32 / 100.0;
            let err = (s.dequantize(s.quantize(x)) - x).abs();
            assert!(err <= s.scale() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let s = QuantScale::new(0.01);
        assert_eq!(s.quantize(100.0), 127);
        assert_eq!(s.quantize(-100.0), -127);
    }

    #[test]
    fn zero_input_degenerates_gracefully() {
        let s = QuantScale::fit(&[0.0, 0.0]);
        assert_eq!(s.quantize(0.0), 0);
        assert_eq!(s, QuantScale::UNIT);
        let empty = QuantScale::fit(&[]);
        assert_eq!(empty, QuantScale::UNIT);
    }

    #[test]
    fn slice_helpers_round_trip() {
        let xs = [0.5f32, -0.25, 0.125];
        let s = QuantScale::fit(&xs);
        let qs = s.quantize_all(&xs);
        let back = s.dequantize_all(&qs);
        for (x, b) in xs.iter().zip(&back) {
            assert!((x - b).abs() <= s.scale() / 2.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_scale_rejected() {
        let _ = QuantScale::new(-1.0);
    }
}
