//! Error types for MADDNESS training and execution.

use core::fmt;

/// Errors produced while training or running a MADDNESS operator.
#[derive(Debug, Clone, PartialEq)]
pub enum MaddnessError {
    /// The calibration matrix had no rows.
    EmptyCalibration,
    /// Incompatible shapes between inputs, weights or configuration.
    DimensionMismatch {
        /// What was being checked.
        context: &'static str,
        /// The value that was expected.
        expected: usize,
        /// The value that was found.
        found: usize,
    },
    /// A configuration value is out of its valid range.
    BadConfig(String),
    /// The ridge prototype refit failed (system not positive definite even
    /// with the requested regularisation).
    RidgeFailed(String),
}

impl fmt::Display for MaddnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaddnessError::EmptyCalibration => {
                write!(f, "calibration data contains no rows")
            }
            MaddnessError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            MaddnessError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MaddnessError::RidgeFailed(msg) => {
                write!(f, "prototype optimisation failed: {msg}")
            }
        }
    }
}

impl std::error::Error for MaddnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = MaddnessError::DimensionMismatch {
            context: "weight rows vs input columns",
            expected: 9,
            found: 8,
        };
        assert_eq!(
            e.to_string(),
            "weight rows vs input columns: expected 9, found 8"
        );
        assert!(MaddnessError::EmptyCalibration
            .to_string()
            .contains("no rows"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(MaddnessError::EmptyCalibration);
    }
}
