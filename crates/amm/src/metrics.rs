//! Approximation-quality metrics used across the evaluation.

use crate::linalg::Mat;

/// Normalised mean squared error `‖A − B‖² / ‖A‖²` between a reference and
/// an approximation.
///
/// Returns 0 for two all-zero matrices (a perfect, if degenerate, match).
///
/// ```
/// use maddpipe_amm::linalg::Mat;
/// use maddpipe_amm::metrics::nmse;
///
/// let a = Mat::from_rows(&[&[1.0, 0.0]]);
/// assert_eq!(nmse(&a, &a), 0.0);
/// ```
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn nmse(reference: &Mat, approx: &Mat) -> f64 {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (approx.rows(), approx.cols()),
        "nmse shape mismatch"
    );
    let err: f64 = reference
        .data()
        .iter()
        .zip(approx.data())
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum();
    let norm: f64 = reference
        .data()
        .iter()
        .map(|&a| (a as f64) * (a as f64))
        .sum();
    if norm == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        err / norm
    }
}

/// Largest absolute element-wise error.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn max_abs_error(reference: &Mat, approx: &Mat) -> f32 {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (approx.rows(), approx.cols()),
        "max_abs_error shape mismatch"
    );
    reference
        .data()
        .iter()
        .zip(approx.data())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f32::max)
}

/// Fraction of rows whose argmax matches between reference and
/// approximation — "classification agreement", the metric behind the
/// paper's Table II accuracy row (identical accuracy ⇔ agreement ≈ 1).
///
/// # Panics
///
/// Panics on shape mismatch or zero-width matrices.
pub fn argmax_agreement(reference: &Mat, approx: &Mat) -> f64 {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (approx.rows(), approx.cols()),
        "argmax_agreement shape mismatch"
    );
    assert!(reference.cols() > 0, "argmax of empty rows is undefined");
    let mut same = 0usize;
    for r in 0..reference.rows() {
        if argmax(reference.row(r)) == argmax(approx.row(r)) {
            same += 1;
        }
    }
    same as f64 / reference.rows().max(1) as f64
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmse_zero_for_identical() {
        let a = Mat::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        assert_eq!(nmse(&a, &a), 0.0);
    }

    #[test]
    fn nmse_one_for_zero_approximation() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let z = Mat::zeros(1, 2);
        assert!((nmse(&a, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmse_zero_reference_edge_cases() {
        let z = Mat::zeros(1, 2);
        assert_eq!(nmse(&z, &z), 0.0);
        let nz = Mat::from_rows(&[&[1.0, 0.0]]);
        assert!(nmse(&z, &nz).is_infinite());
    }

    #[test]
    fn max_abs_error_finds_worst() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[1.5, -1.0]]);
        assert!((max_abs_error(&a, &b) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn agreement_counts_matching_argmax() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[5.0, 0.0]]);
        let b = Mat::from_rows(&[&[0.0, 9.0], &[0.0, 1.0]]);
        // Row 0 agrees (argmax 1), row 1 does not.
        assert!((argmax_agreement(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), 0);
        assert_eq!(argmax(&[0.0, 2.0, 2.0]), 1);
    }
}
