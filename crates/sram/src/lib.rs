//! # maddpipe-sram
//!
//! The two-port 10T-SRAM lookup-table substrate of the accelerator
//! (paper §III-C): a functional 16×8 array model, an event-driven column
//! cell with differential read-bitline dynamics, per-column
//! read-completion detection (RCD), the NAND–NOR completion tree, and a
//! Monte-Carlo study of the replica-column timing scheme the paper's RCD
//! replaces.
//!
//! ```
//! use maddpipe_sram::model::SramModel;
//!
//! let mut lut = SramModel::new();
//! for row in 0..16 { lut.write(row, (row as u8) * 7); }
//! assert_eq!(lut.read(5), 35);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod model;
pub mod rcd;
pub mod replica;

pub use column::{build_column, build_column_with_timing, ColumnPorts, SramColumnCell};
pub use model::{new_column, ColumnHandle, SramModel, COLS, ROWS};
pub use rcd::{build_completion_tree, completion_tree_depth};
pub use replica::{ReplicaOutcome, ReplicaStudy};
