//! Read-completion-detection (RCD) trees.
//!
//! Per paper Fig. 5 C, the per-column `RCD_col` signals are merged with a
//! NAND–NOR tournament into one `RCD_LUT` signal per decoder, and the
//! per-decoder signals are merged again into the block-level `RCD` used by
//! the handshake controller. The alternating NAND/NOR levels implement a
//! wide AND with two-input standard cells (cheaper and faster than a single
//! wide gate).

use maddpipe_sim::circuit::{CircuitBuilder, NetId};

/// Builds an active-high completion tree: the output rises only after
/// *every* input is high.
///
/// Levels alternate NAND and NOR; a final inverter is inserted when the
/// depth leaves the result active-low. Odd leftover signals at a level are
/// carried to the next level unchanged (with their polarity tracked).
///
/// Returns the completion net.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn build_completion_tree(b: &mut CircuitBuilder, name: &str, inputs: &[NetId]) -> NetId {
    assert!(
        !inputs.is_empty(),
        "completion tree needs at least one input"
    );
    // Track (net, active_high) pairs per level.
    let mut level: Vec<(NetId, bool)> = inputs.iter().map(|&n| (n, true)).collect();
    let mut stage = 0usize;
    while level.len() > 1 || !level[0].1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < level.len() {
            let (a, pa) = level[i];
            let (c, pc) = level[i + 1];
            let gate_name = format!("{name}.t{stage}_{}", i / 2);
            let merged = match (pa, pc) {
                (true, true) => {
                    // AND of two active-high → NAND, result active-low.
                    (b.nand2(&gate_name, [a, c]), false)
                }
                (false, false) => {
                    // AND of two active-low  → NOR, result active-high.
                    (b.nor2(&gate_name, [a, c]), true)
                }
                (true, false) | (false, true) => {
                    // Mixed polarity: invert the active-low one first.
                    let (lo, hi) = if pa { (c, a) } else { (a, c) };
                    let fixed = b.inv(&format!("{gate_name}.fix"), lo);
                    (b.nand2(&gate_name, [fixed, hi]), false)
                }
            };
            next.push(merged);
            i += 2;
        }
        if i < level.len() {
            next.push(level[i]);
        }
        // A single active-low survivor needs a final inverter.
        if next.len() == 1 && !next[0].1 {
            let inv = b.inv(&format!("{name}.t{stage}_out"), next[0].0);
            next[0] = (inv, true);
        }
        level = next;
        stage += 1;
        assert!(stage < 64, "completion tree failed to converge");
    }
    level[0].0
}

/// Gate depth of a completion tree over `n` inputs (log₂, rounded up) —
/// used by the analytic latency model: deeper RCD trees are why larger
/// `Ndec` slightly increases decoder latency (paper §IV, Fig. 7 discussion).
pub fn completion_tree_depth(n: usize) -> usize {
    assert!(n > 0, "completion tree needs at least one input");
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_sim::engine::Simulator;
    use maddpipe_sim::library::CellLibrary;
    use maddpipe_sim::logic::Logic;
    use maddpipe_tech::corner::OperatingPoint;
    use maddpipe_tech::process::Technology;

    fn tree_sim(n: usize) -> (Simulator, Vec<NetId>, NetId) {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let inputs: Vec<NetId> = (0..n).map(|i| b.input(format!("in{i}"))).collect();
        let out = build_completion_tree(&mut b, "rcd", &inputs);
        let sim = Simulator::new(b.build());
        (sim, inputs, out)
    }

    #[test]
    fn output_high_only_when_all_inputs_high() {
        for n in [1usize, 2, 3, 4, 5, 8, 16] {
            let (mut sim, inputs, out) = tree_sim(n);
            for &i in &inputs {
                sim.poke(i, Logic::Low);
            }
            sim.run_to_quiescence().unwrap();
            assert_eq!(sim.value(out), Logic::Low, "n={n}, all low");
            // Raise all but one.
            for &i in &inputs[1..] {
                sim.poke(i, Logic::High);
            }
            sim.run_to_quiescence().unwrap();
            if n > 1 {
                assert_eq!(sim.value(out), Logic::Low, "n={n}, one low");
            }
            sim.poke(inputs[0], Logic::High);
            sim.run_to_quiescence().unwrap();
            assert_eq!(sim.value(out), Logic::High, "n={n}, all high");
        }
    }

    #[test]
    fn exhaustive_four_input_truth() {
        for pattern in 0u8..16 {
            let (mut sim, inputs, out) = tree_sim(4);
            for (i, &net) in inputs.iter().enumerate() {
                sim.poke(net, Logic::from_bool(pattern >> i & 1 == 1));
            }
            sim.run_to_quiescence().unwrap();
            let expected = Logic::from_bool(pattern == 0b1111);
            assert_eq!(sim.value(out), expected, "pattern {pattern:04b}");
        }
    }

    #[test]
    fn completion_is_last_arriving_input() {
        let (mut sim, inputs, out) = tree_sim(8);
        for &i in &inputs {
            sim.poke(i, Logic::Low);
        }
        sim.run_to_quiescence().unwrap();
        // Raise 7 inputs now, the 8th later; completion must track the 8th.
        for &i in &inputs[..7] {
            sim.poke(i, Logic::High);
        }
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.value(out), Logic::Low);
        let t_before = sim.now();
        sim.poke(inputs[7], Logic::High);
        let t_done = sim.run_until_net(out, Logic::High).unwrap().unwrap();
        assert!(t_done > t_before);
    }

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(completion_tree_depth(1), 0);
        assert_eq!(completion_tree_depth(2), 1);
        assert_eq!(completion_tree_depth(8), 3);
        assert_eq!(completion_tree_depth(9), 4);
        assert_eq!(completion_tree_depth(16), 4);
        assert_eq!(completion_tree_depth(128), 7);
    }
}
