//! Behavioural model of the paper's two-port 10T-SRAM LUT array.
//!
//! The decoder LUT is a 16-row × 8-column array (§III-C): 16 rows because
//! the 4-level BDT encoder produces 16 prototypes, 8 columns because LUT
//! entries are INT8. The *10T* cell is a standard 6T storage core plus a
//! 4-transistor differential read port (read wordline + RBL/RBLB pull-down
//! pair), giving an independent read port that never disturbs the cell —
//! which is what lets the macro read at full speed without sense
//! amplifiers.
//!
//! [`SramModel`] is the functional view (used by the analytic PPA model and
//! by tests); the event-driven circuit view lives in [`crate::column`].

use core::fmt;
use std::cell::RefCell;
use std::rc::Rc;

/// Rows in a decoder LUT (one per prototype).
pub const ROWS: usize = 16;

/// Columns in a decoder LUT (one per INT8 bit).
pub const COLS: usize = 8;

/// The bits stored in one SRAM column, shared between the functional model
/// and the circuit cell (programming happens through this handle before the
/// inference stimulus starts, mirroring the paper's "prior to the
/// inference, the precomputed dot products ... are loaded" flow).
pub type ColumnHandle = Rc<RefCell<[bool; ROWS]>>;

/// Creates a zero-initialised column handle.
pub fn new_column() -> ColumnHandle {
    Rc::new(RefCell::new([false; ROWS]))
}

/// A functional 16×8 two-port SRAM array storing 16 INT8 LUT entries.
///
/// ```
/// use maddpipe_sram::model::SramModel;
///
/// let mut lut = SramModel::new();
/// lut.write(3, -42i8 as u8);
/// assert_eq!(lut.read(3) as i8, -42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SramModel {
    words: [u8; ROWS],
}

impl SramModel {
    /// Creates a zeroed array.
    pub fn new() -> SramModel {
        SramModel::default()
    }

    /// Creates an array pre-loaded with a LUT image.
    pub fn from_words(words: [u8; ROWS]) -> SramModel {
        SramModel { words }
    }

    /// Writes one row (the global write driver path of Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if `row ≥ 16`.
    pub fn write(&mut self, row: usize, word: u8) {
        assert!(row < ROWS, "row {row} out of range");
        self.words[row] = word;
    }

    /// Reads one row through the independent read port.
    ///
    /// # Panics
    ///
    /// Panics if `row ≥ 16`.
    pub fn read(&self, row: usize) -> u8 {
        assert!(row < ROWS, "row {row} out of range");
        self.words[row]
    }

    /// Reads one row as the signed LUT entry it encodes.
    pub fn read_i8(&self, row: usize) -> i8 {
        self.read(row) as i8
    }

    /// All stored words.
    pub fn words(&self) -> &[u8; ROWS] {
        &self.words
    }

    /// The bit of (`row`, `col`), LSB-first — what one physical column
    /// stores at one row.
    pub fn bit(&self, row: usize, col: usize) -> bool {
        assert!(col < COLS, "column {col} out of range");
        self.read(row) >> col & 1 == 1
    }

    /// Splits the array into 8 per-column handles for circuit construction.
    pub fn to_column_handles(&self) -> Vec<ColumnHandle> {
        (0..COLS)
            .map(|c| {
                let mut bits = [false; ROWS];
                for (r, b) in bits.iter_mut().enumerate() {
                    *b = self.bit(r, c);
                }
                Rc::new(RefCell::new(bits))
            })
            .collect()
    }

    /// Rebuilds the functional view from per-column handles (used by tests
    /// to confirm the circuit was programmed correctly).
    pub fn from_column_handles(handles: &[ColumnHandle]) -> SramModel {
        assert_eq!(handles.len(), COLS, "expected {COLS} column handles");
        let mut words = [0u8; ROWS];
        for (c, h) in handles.iter().enumerate() {
            let bits = h.borrow();
            for (r, word) in words.iter_mut().enumerate() {
                if bits[r] {
                    *word |= 1 << c;
                }
            }
        }
        SramModel { words }
    }
}

impl fmt::Display for SramModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SramModel[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:02x}", w)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_all_rows() {
        let mut m = SramModel::new();
        for r in 0..ROWS {
            m.write(r, (r as u8).wrapping_mul(17).wrapping_add(3));
        }
        for r in 0..ROWS {
            assert_eq!(m.read(r), (r as u8).wrapping_mul(17).wrapping_add(3));
        }
    }

    #[test]
    fn signed_view_is_twos_complement() {
        let mut m = SramModel::new();
        m.write(0, 0xFF);
        assert_eq!(m.read_i8(0), -1);
        m.write(1, 0x80);
        assert_eq!(m.read_i8(1), -128);
    }

    #[test]
    fn bits_are_lsb_first() {
        let mut m = SramModel::new();
        m.write(5, 0b0000_0101);
        assert!(m.bit(5, 0));
        assert!(!m.bit(5, 1));
        assert!(m.bit(5, 2));
    }

    #[test]
    fn column_handles_round_trip() {
        let mut m = SramModel::new();
        for r in 0..ROWS {
            m.write(r, (r * 13 % 256) as u8);
        }
        let handles = m.to_column_handles();
        assert_eq!(handles.len(), COLS);
        let back = SramModel::from_column_handles(&handles);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_bounds_checked() {
        let m = SramModel::new();
        let _ = m.read(16);
    }

    #[test]
    fn display_shows_contents() {
        let mut m = SramModel::new();
        m.write(0, 0xAB);
        assert!(m.to_string().starts_with("SramModel[ab"));
    }
}
