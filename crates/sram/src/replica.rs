//! Replica-column timing analysis — the conventional alternative the paper
//! argues against.
//!
//! Traditional SRAMs derive their sense/latch timing from a *replica
//! column* that mimics the worst-case bitline (§III-C, citing Amrutur &
//! Horowitz). One replica serves the whole array, so its delay estimate is
//! a single sample of the same mismatch distribution as the live columns:
//! any live column slower than `replica_delay × margin` violates the latch
//! setup. The paper's per-column RCD instead derives the latch strobe from
//! each column's *own* completion, which cannot be outrun by construction.
//!
//! This module quantifies that argument with a Monte-Carlo model used by
//! the `ablation_rcd` experiment.

use core::fmt;
use maddpipe_tech::variation::SplitMix64;

/// Monte-Carlo comparison of replica-based vs per-column completion timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaStudy {
    /// Relative per-column delay mismatch (1σ).
    pub sigma: f64,
    /// Multiplicative guard-band applied to the replica's delay.
    pub margin: f64,
    /// Columns strobed by one replica (the paper's LUT: 8 per decoder,
    /// `8·Ndec` per block).
    pub columns: usize,
}

/// Result of a [`ReplicaStudy`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaOutcome {
    /// Probability that at least one column misses the replica-derived
    /// strobe (a setup violation → corrupted read).
    pub replica_failure_rate: f64,
    /// Failure probability of the per-column RCD scheme (always zero: the
    /// strobe is derived from the completing column itself).
    pub rcd_failure_rate: f64,
    /// Mean timing slack (in units of nominal delay) the replica scheme
    /// leaves on the table when it does not fail.
    pub replica_mean_slack: f64,
    /// Trials simulated.
    pub trials: usize,
}

impl ReplicaStudy {
    /// Creates a study.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative, `margin < 1`, or `columns == 0`.
    pub fn new(sigma: f64, margin: f64, columns: usize) -> ReplicaStudy {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(margin >= 1.0, "a margin below 1 always fails");
        assert!(columns > 0, "need at least one column");
        ReplicaStudy {
            sigma,
            margin,
            columns,
        }
    }

    /// Runs `trials` Monte-Carlo reads with the given seed.
    ///
    /// Each trial samples one replica delay and `columns` live-column
    /// delays from `N(1, σ)`; the replica strobe fires at
    /// `replica × margin`, and the trial fails if any live column is
    /// slower.
    pub fn run(&self, trials: usize, seed: u64) -> ReplicaOutcome {
        assert!(trials > 0, "need at least one trial");
        let mut rng = SplitMix64::new(seed);
        let normal = move |rng: &mut SplitMix64| -> f64 {
            // Box–Muller using the shared generator.
            loop {
                let u1 = rng.next_f64();
                if u1 > 1e-300 {
                    let u2 = rng.next_f64();
                    return (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
                }
            }
        };
        let mut failures = 0usize;
        let mut slack_sum = 0.0f64;
        let mut slack_count = 0usize;
        for _ in 0..trials {
            let replica = (1.0 + self.sigma * normal(&mut rng)).max(0.05);
            let strobe = replica * self.margin;
            let mut worst = 0.0f64;
            for _ in 0..self.columns {
                let col = (1.0 + self.sigma * normal(&mut rng)).max(0.05);
                worst = worst.max(col);
            }
            if worst > strobe {
                failures += 1;
            } else {
                slack_sum += strobe - worst;
                slack_count += 1;
            }
        }
        ReplicaOutcome {
            replica_failure_rate: failures as f64 / trials as f64,
            rcd_failure_rate: 0.0,
            replica_mean_slack: if slack_count > 0 {
                slack_sum / slack_count as f64
            } else {
                0.0
            },
            trials,
        }
    }
}

impl fmt::Display for ReplicaOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replica fails {:.3}% of reads (mean slack {:.3}); per-column RCD fails {:.1}%",
            self.replica_failure_rate * 100.0,
            self.replica_mean_slack,
            self.rcd_failure_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_never_fails() {
        let out = ReplicaStudy::new(0.0, 1.05, 128).run(2_000, 1);
        assert_eq!(out.replica_failure_rate, 0.0);
        assert!(out.replica_mean_slack > 0.0);
    }

    #[test]
    fn high_sigma_with_thin_margin_fails_often() {
        let out = ReplicaStudy::new(0.10, 1.02, 128).run(2_000, 2);
        assert!(
            out.replica_failure_rate > 0.3,
            "expected frequent failures, got {}",
            out.replica_failure_rate
        );
    }

    #[test]
    fn wider_margin_reduces_failures_but_adds_slack() {
        let tight = ReplicaStudy::new(0.08, 1.05, 64).run(4_000, 3);
        let wide = ReplicaStudy::new(0.08, 1.5, 64).run(4_000, 3);
        assert!(wide.replica_failure_rate < tight.replica_failure_rate);
        assert!(wide.replica_mean_slack > tight.replica_mean_slack);
    }

    #[test]
    fn more_columns_fail_more() {
        let few = ReplicaStudy::new(0.08, 1.1, 8).run(4_000, 4);
        let many = ReplicaStudy::new(0.08, 1.1, 512).run(4_000, 4);
        assert!(many.replica_failure_rate >= few.replica_failure_rate);
    }

    #[test]
    fn rcd_scheme_never_fails_by_construction() {
        let out = ReplicaStudy::new(0.2, 1.0, 512).run(500, 5);
        assert_eq!(out.rcd_failure_rate, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ReplicaStudy::new(0.08, 1.1, 64).run(1_000, 7);
        let b = ReplicaStudy::new(0.08, 1.1, 64).run(1_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "margin below 1")]
    fn sub_unity_margin_rejected() {
        let _ = ReplicaStudy::new(0.05, 0.9, 8);
    }
}
