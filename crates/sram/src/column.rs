//! Event-driven model of one two-port 10T-SRAM column.
//!
//! One column owns a differential read-bitline pair. The read sequence
//! (paper Fig. 5 A/B) is:
//!
//! 1. precharge: `PCHE` high pulls both RBL and RBLB to VDD;
//! 2. evaluate: one `RWL[i]` is asserted; the selected cell *fully
//!    discharges* either RBL (stored 0) or RBLB (stored 1) — full-swing,
//!    no sense amplifier;
//! 3. the column's RCD NAND sees one rail fall and raises `RCD_col`.
//!
//! The column is a single behavioural [`Cell`] rather than 10 transistors ×
//! 16 rows: the shared dynamic bitline is exactly the kind of multi-driver
//! analog node an event simulator models best as one unit. Discharge delay
//! is NMOS-limited and carries *per-column* mismatch — the variability that
//! motivates the paper's per-column RCD over a shared replica column.

use crate::model::{ColumnHandle, ROWS};
use maddpipe_sim::cell::{Cell, EvalCtx, ViolationKind};
use maddpipe_sim::circuit::{CircuitBuilder, NetId};
use maddpipe_sim::logic::Logic;
use maddpipe_sim::time::SimTime;
use maddpipe_tech::process::DriveKind;
use maddpipe_tech::units::{Farads, Seconds};

/// Nominal (0.8 V / TTG) read-bitline discharge delay of a 16-row column.
pub const NOMINAL_DISCHARGE_PS: f64 = 380.0;

/// Nominal (0.8 V / TTG) precharge delay of the bitline pair.
pub const NOMINAL_PRECHARGE_PS: f64 = 220.0;

/// The behavioural cell for one SRAM column.
///
/// * Inputs: pin 0 = `PCHE` (active-high precharge), pins `1..=16` =
///   `RWL[0..16]` (one-hot read wordlines).
/// * Outputs: pin 0 = `RBL`, pin 1 = `RBLB`.
#[derive(Debug)]
pub struct SramColumnCell {
    data: ColumnHandle,
    t_discharge: SimTime,
    t_precharge: SimTime,
}

impl SramColumnCell {
    /// Creates a column over shared storage with sampled timing.
    pub fn new(data: ColumnHandle, t_discharge: SimTime, t_precharge: SimTime) -> SramColumnCell {
        SramColumnCell {
            data,
            t_discharge,
            t_precharge,
        }
    }

    /// Scans the one-hot wordlines without allocating: the evaluation runs
    /// once per bitline event on the kernel hot path, so the common cases
    /// (zero or one asserted row) must stay a register-only loop. Returns
    /// `(count, lowest asserted row)`.
    fn asserted_rows(ctx: &EvalCtx<'_>) -> (usize, usize) {
        let mut count = 0;
        let mut first = 0;
        for r in 0..ROWS {
            if ctx.input(1 + r).is_high() {
                if count == 0 {
                    first = r;
                }
                count += 1;
            }
        }
        (count, first)
    }

    /// The asserted row list, materialised only on the (cold) violation
    /// reporting paths.
    fn asserted_row_list(ctx: &EvalCtx<'_>) -> Vec<usize> {
        (0..ROWS).filter(|&r| ctx.input(1 + r).is_high()).collect()
    }
}

impl Cell for SramColumnCell {
    fn num_inputs(&self) -> usize {
        1 + ROWS
    }

    fn num_outputs(&self) -> usize {
        2
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
        let pche = ctx.input(0);
        let (n_rows, first_row) = Self::asserted_rows(ctx);
        match pche {
            Logic::High => {
                if n_rows > 0 {
                    let rows = Self::asserted_row_list(ctx);
                    ctx.report(
                        ViolationKind::Protocol,
                        format!("precharge asserted while RWL{rows:?} active — crowbar current"),
                    );
                }
                ctx.drive(0, Logic::High, self.t_precharge);
                ctx.drive(1, Logic::High, self.t_precharge);
            }
            Logic::Low => {
                if n_rows > 1 {
                    let rows = Self::asserted_row_list(ctx);
                    ctx.report(
                        ViolationKind::Protocol,
                        format!("multiple read wordlines asserted: {rows:?}"),
                    );
                    return;
                }
                if n_rows == 1 {
                    let bit = self.data.borrow()[first_row];
                    // Stored 1 discharges RBLB, stored 0 discharges RBL
                    // (differential read: exactly one rail falls).
                    let pin = if bit { 1 } else { 0 };
                    ctx.drive(pin, Logic::Low, self.t_discharge);
                }
                // No RWL: dynamic node holds its precharged level.
            }
            Logic::X => {
                ctx.drive(0, Logic::X, self.t_precharge);
                ctx.drive(1, Logic::X, self.t_precharge);
            }
        }
    }
}

/// The circuit-side ports of a built column.
#[derive(Debug, Clone)]
pub struct ColumnPorts {
    /// Read bitline (discharges for a stored 0).
    pub rbl: NetId,
    /// Complement read bitline (discharges for a stored 1).
    pub rblb: NetId,
    /// Column-local read-completion signal (high once either rail fell).
    pub rcd_col: NetId,
    /// Handle for programming the stored bits.
    pub data: ColumnHandle,
}

/// Instantiates one SRAM column plus its RCD NAND in the builder's current
/// domain.
///
/// `rwl` must contain the 16 shared read wordlines; `pche` is the precharge
/// input; `extra_sigma` adds deterministic per-column delay skew on top of
/// the library's mismatch sampling (used by the replica-vs-RCD ablation).
///
/// # Panics
///
/// Panics if `rwl.len() != 16`.
pub fn build_column(
    b: &mut CircuitBuilder,
    name: &str,
    rwl: &[NetId],
    pche: NetId,
    data: ColumnHandle,
    extra_delay_factor: f64,
) -> ColumnPorts {
    build_column_with_timing(
        b,
        name,
        rwl,
        pche,
        data,
        Seconds::from_picos(NOMINAL_DISCHARGE_PS * extra_delay_factor),
        Seconds::from_picos(NOMINAL_PRECHARGE_PS),
    )
}

/// [`build_column`] with explicit nominal (0.8 V / TTG) discharge and
/// precharge delays — used when the caller carries its own calibration.
///
/// # Panics
///
/// Panics if `rwl.len() != 16`.
pub fn build_column_with_timing(
    b: &mut CircuitBuilder,
    name: &str,
    rwl: &[NetId],
    pche: NetId,
    data: ColumnHandle,
    discharge_nominal: Seconds,
    precharge_nominal: Seconds,
) -> ColumnPorts {
    assert_eq!(rwl.len(), ROWS, "expected {ROWS} read wordlines");
    let tech = b.library().technology().clone();
    let t_discharge = b
        .library_mut()
        .delay(discharge_nominal, DriveKind::PullDown);
    let t_precharge = b.library_mut().delay(precharge_nominal, DriveKind::PullUp);
    let rbl = b.net(format!("{name}.rbl"));
    let rblb = b.net(format!("{name}.rblb"));
    // Bitline load: 16 cell junctions plus the vertical wire.
    let bl_cap = Farads(tech.cap_bitcell_bl.0 * ROWS as f64) + tech.wire_cap(8.0);
    b.add_wire_cap(rbl, bl_cap);
    b.add_wire_cap(rblb, bl_cap);
    let mut inputs = Vec::with_capacity(1 + ROWS);
    inputs.push(pche);
    inputs.extend_from_slice(rwl);
    b.add_cell(
        format!("{name}.col"),
        Box::new(SramColumnCell::new(data.clone(), t_discharge, t_precharge)),
        &inputs,
        &[rbl, rblb],
    );
    // RCD: NAND(RBL, RBLB) rises as soon as either precharged rail falls
    // (Fig. 5 A): both high (precharged) → 0; one low (read done) → 1.
    let rcd_col = b.nand2(&format!("{name}.rcd"), [rbl, rblb]);
    ColumnPorts {
        rbl,
        rblb,
        rcd_col,
        data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::new_column;
    use maddpipe_sim::engine::Simulator;
    use maddpipe_sim::library::CellLibrary;
    use maddpipe_tech::corner::{Corner, OperatingPoint};
    use maddpipe_tech::process::Technology;
    use maddpipe_tech::units::Volts;

    struct Harness {
        sim: Simulator,
        pche: NetId,
        rwl: Vec<NetId>,
        ports: ColumnPorts,
    }

    fn harness(bits: [bool; ROWS], vdd: f64) -> Harness {
        let lib = CellLibrary::new(
            Technology::n22(),
            OperatingPoint::new(Volts(vdd), Corner::Ttg),
        );
        let mut b = CircuitBuilder::new(lib);
        let pche = b.input("pche");
        let rwl: Vec<NetId> = (0..ROWS).map(|i| b.input(format!("rwl[{i}]"))).collect();
        let data = new_column();
        *data.borrow_mut() = bits;
        let ports = build_column(&mut b, "c0", &rwl, pche, data, 1.0);
        let mut sim = Simulator::new(b.build());
        // Precharge once so the rails are in a known state.
        sim.poke(pche, Logic::High);
        for &w in &rwl {
            sim.poke(w, Logic::Low);
        }
        sim.run_to_quiescence().unwrap();
        sim.poke(pche, Logic::Low);
        sim.run_to_quiescence().unwrap();
        Harness {
            sim,
            pche,
            rwl,
            ports,
        }
    }

    fn read_row(h: &mut Harness, row: usize) -> (Logic, Logic, SimTime) {
        // Precharge.
        h.sim.poke(h.pche, Logic::High);
        h.sim.run_to_quiescence().unwrap();
        h.sim.poke(h.pche, Logic::Low);
        h.sim.run_to_quiescence().unwrap();
        let t0 = h.sim.now();
        h.sim.poke(h.rwl[row], Logic::High);
        let done = h
            .sim
            .run_until_net(h.ports.rcd_col, Logic::High)
            .unwrap()
            .expect("read must complete");
        let latency = done.since(t0);
        let result = (h.sim.value(h.ports.rbl), h.sim.value(h.ports.rblb));
        h.sim.poke(h.rwl[row], Logic::Low);
        h.sim.run_to_quiescence().unwrap();
        (result.0, result.1, latency)
    }

    #[test]
    fn stored_one_discharges_rblb() {
        let mut bits = [false; ROWS];
        bits[4] = true;
        let mut h = harness(bits, 0.8);
        let (rbl, rblb, _) = read_row(&mut h, 4);
        assert_eq!(rbl, Logic::High);
        assert_eq!(rblb, Logic::Low);
    }

    #[test]
    fn stored_zero_discharges_rbl() {
        let bits = [false; ROWS];
        let mut h = harness(bits, 0.8);
        let (rbl, rblb, _) = read_row(&mut h, 7);
        assert_eq!(rbl, Logic::Low);
        assert_eq!(rblb, Logic::High);
    }

    #[test]
    fn every_row_reads_its_own_bit() {
        let mut bits = [false; ROWS];
        for (i, b) in bits.iter_mut().enumerate() {
            *b = i % 3 == 0;
        }
        let mut h = harness(bits, 0.8);
        #[allow(clippy::needless_range_loop)] // row doubles as the address under test
        for row in 0..ROWS {
            let (rbl, rblb, _) = read_row(&mut h, row);
            if bits[row] {
                assert_eq!((rbl, rblb), (Logic::High, Logic::Low), "row {row}");
            } else {
                assert_eq!((rbl, rblb), (Logic::Low, Logic::High), "row {row}");
            }
        }
    }

    #[test]
    fn low_supply_slows_the_read() {
        let bits = [true; ROWS];
        let mut fast = harness(bits, 0.8);
        let (.., t_fast) = read_row(&mut fast, 0);
        let mut slow = harness(bits, 0.5);
        let (.., t_slow) = read_row(&mut slow, 0);
        let ratio = t_slow.as_picos() / t_fast.as_picos();
        assert!(
            (3.0..9.0).contains(&ratio),
            "0.5 V read {t_slow} vs 0.8 V {t_fast} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn reprogramming_through_handle_changes_reads() {
        let bits = [false; ROWS];
        let mut h = harness(bits, 0.8);
        let (rbl, _, _) = read_row(&mut h, 2);
        assert_eq!(rbl, Logic::Low);
        h.ports.data.borrow_mut()[2] = true;
        let (rbl, rblb, _) = read_row(&mut h, 2);
        assert_eq!((rbl, rblb), (Logic::High, Logic::Low));
    }

    #[test]
    fn double_wordline_assertion_is_a_protocol_violation() {
        let bits = [false; ROWS];
        let mut h = harness(bits, 0.8);
        h.sim.poke(h.pche, Logic::High);
        h.sim.run_to_quiescence().unwrap();
        h.sim.poke(h.pche, Logic::Low);
        h.sim.run_to_quiescence().unwrap();
        h.sim.poke(h.rwl[0], Logic::High);
        h.sim.poke(h.rwl[5], Logic::High);
        h.sim.run_to_quiescence().unwrap();
        assert!(h
            .sim
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::Protocol));
    }

    #[test]
    fn energy_is_burned_per_read_cycle() {
        let bits = [true; ROWS];
        let mut h = harness(bits, 0.5);
        h.sim.reset_energy();
        // A full cycle: read (discharge) then precharge back up — the
        // recharge is where the supply energy is actually drawn.
        let _ = read_row(&mut h, 3);
        h.sim.poke(h.pche, Logic::High);
        h.sim.run_to_quiescence().unwrap();
        let e = h.sim.total_energy();
        assert!(
            e.as_femtos() > 1.0,
            "a full precharge+discharge cycle must cost real energy, got {e}"
        );
    }
}
