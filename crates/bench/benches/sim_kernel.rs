//! Criterion benchmark: raw event-kernel throughput of the simulator —
//! events per second through gate chains, completion trees, wide-bus
//! fanout and the full accelerator macro.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maddpipe_bench::kernel_workloads::{
    bus_fanout_sim, completion_tree_sim, inverter_chain, macro_testbench, BUS_WIDTH,
};
use maddpipe_sim::prelude::*;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_kernel");
    for &n in &[64usize, 512] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("inverter_chain", n), &n, |bencher, &n| {
            let (mut sim, input, _) = inverter_chain(n);
            sim.poke(input, Logic::Low);
            sim.run_to_quiescence().expect("settle");
            let mut level = Logic::High;
            bencher.iter(|| {
                sim.poke(input, level);
                level = !level;
                sim.run_to_quiescence().expect("propagate")
            });
        });
    }
    group.bench_function("completion_tree_128", |bencher| {
        let (mut sim, inputs) = completion_tree_sim();
        for &i in &inputs {
            sim.poke(i, Logic::Low);
        }
        sim.run_to_quiescence().expect("settle");
        let mut high = true;
        bencher.iter(|| {
            for &i in &inputs {
                sim.poke(i, Logic::from_bool(high));
            }
            high = !high;
            sim.run_to_quiescence().expect("propagate")
        });
    });
    // A 16-bit bus whose every bit lands on one listener: the delta-cycle
    // batching case. One iteration flips all 16 bits at the same
    // timestamp; the kernel must evaluate the listening cell once, not 16
    // times.
    group.throughput(Throughput::Elements(BUS_WIDTH as u64));
    group.bench_function("bus_fanout_16", |bencher| {
        let (mut sim, bus) = bus_fanout_sim();
        sim.poke_bus(&bus, 0);
        sim.run_to_quiescence().expect("settle");
        let mut pattern: u64 = 0xA5A5;
        bencher.iter(|| {
            sim.poke_bus(&bus, pattern & 0xFFFF);
            pattern = !pattern;
            sim.run_to_quiescence().expect("propagate")
        });
    });
    group.finish();

    // The end metric everything above serves: tokens per second through
    // the full self-synchronous macro netlist.
    let mut group = c.benchmark_group("macro_throughput");
    group.sample_size(10);
    group.bench_function("token_ndec2_ns2", |bencher| {
        let (mut rtl, tokens) = macro_testbench();
        let mut k = 0usize;
        bencher.iter(|| {
            let token = &tokens[k % tokens.len()];
            k += 1;
            rtl.run_token(token).expect("token completes")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
