//! Criterion benchmark: raw event-kernel throughput of the simulator —
//! events per second through gate chains and completion trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maddpipe_sim::prelude::*;
use maddpipe_sram::rcd::build_completion_tree;

fn inverter_chain(n: usize) -> (Simulator, NetId, NetId) {
    let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
    let mut b = CircuitBuilder::new(lib);
    let input = b.input("in");
    let mut node = input;
    for i in 0..n {
        node = b.inv(&format!("u{i}"), node);
    }
    (Simulator::new(b.build()), input, node)
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_kernel");
    for &n in &[64usize, 512] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("inverter_chain", n), &n, |bencher, &n| {
            let (mut sim, input, _) = inverter_chain(n);
            sim.poke(input, Logic::Low);
            sim.run_to_quiescence().expect("settle");
            let mut level = Logic::High;
            bencher.iter(|| {
                sim.poke(input, level);
                level = !level;
                sim.run_to_quiescence().expect("propagate")
            });
        });
    }
    group.bench_function("completion_tree_128", |bencher| {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let inputs: Vec<NetId> = (0..128).map(|i| b.input(format!("i{i}"))).collect();
        let _out = build_completion_tree(&mut b, "rcd", &inputs);
        let mut sim = Simulator::new(b.build());
        for &i in &inputs {
            sim.poke(i, Logic::Low);
        }
        sim.run_to_quiescence().expect("settle");
        let mut high = true;
        bencher.iter(|| {
            for &i in &inputs {
                sim.poke(i, Logic::from_bool(high));
            }
            high = !high;
            sim.run_to_quiescence().expect("propagate")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
