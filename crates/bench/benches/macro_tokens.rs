//! Criterion benchmark: full-macro RTL simulation — tokens per second of
//! host time through the event-driven netlist at two macro sizes, plus the
//! analytic-model evaluation cost (the fast path used for sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
use maddpipe_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_token(ns: usize, rng: &mut StdRng) -> Vec<[i8; SUBVECTOR_LEN]> {
    (0..ns)
        .map(|_| {
            let mut x = [0i8; SUBVECTOR_LEN];
            for v in x.iter_mut() {
                *v = rng.gen_range(-128i32..=127) as i8;
            }
            x
        })
        .collect()
}

fn bench_macro(c: &mut Criterion) {
    let mut group = c.benchmark_group("macro_rtl");
    group.sample_size(20);
    for &(ndec, ns) in &[(2usize, 2usize), (4, 8)] {
        group.bench_with_input(
            BenchmarkId::new("run_token", format!("ndec{ndec}_ns{ns}")),
            &(ndec, ns),
            |bencher, &(ndec, ns)| {
                let cfg = MacroConfig::new(ndec, ns)
                    .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
                let program = MacroProgram::random(ndec, ns, 1);
                let mut rtl = AcceleratorRtl::build(&cfg, &program);
                let mut rng = StdRng::seed_from_u64(2);
                bencher.iter(|| {
                    let token = random_token(ns, &mut rng);
                    rtl.run_token(&token).expect("token")
                });
            },
        );
    }
    group.bench_function("analytic_model_evaluate", |bencher| {
        let cfg = MacroConfig::paper_flagship();
        bencher.iter(|| MacroModel::new(cfg.clone()).evaluate());
    });
    group.bench_function("netlist_build_ndec4_ns8", |bencher| {
        let program = MacroProgram::random(4, 8, 3);
        bencher.iter(|| {
            let cfg = MacroConfig::new(4, 8).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
            AcceleratorRtl::build(&cfg, &program)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_macro);
criterion_main!(benches);
