//! Criterion benchmark: MADDNESS encode/decode throughput vs exact GEMM on
//! the CPU — the software-side view of the paper's premise that table
//! lookups replace multiplications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use maddpipe_amm::prelude::*;

fn calibration(n: usize, d: usize) -> Mat {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| (((i * 31 + j * 17) % 23) as f32 - 11.0) / 11.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    Mat::from_rows(&refs)
}

fn weights(d: usize, n_out: usize) -> Mat {
    let mut w = Mat::zeros(d, n_out);
    for r in 0..d {
        for c in 0..n_out {
            w[(r, c)] = (((r * 7 + c * 13) % 19) as f32 - 9.0) / 9.0;
        }
    }
    w
}

fn bench_amm(c: &mut Criterion) {
    let mut group = c.benchmark_group("amm_vs_gemm");
    // The flagship macro shape: d = 32 channels × 9, 16 outputs.
    let d = 32 * 9;
    let n_out = 16;
    let x = calibration(512, d);
    let w = weights(d, n_out);
    let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("train");
    let exact = ExactMatmul::new(w);
    group.throughput(Throughput::Elements((x.rows() * d * n_out) as u64));
    group.bench_with_input(BenchmarkId::new("exact_gemm", d), &x, |b, x| {
        b.iter(|| exact.apply(x))
    });
    group.bench_with_input(BenchmarkId::new("maddness_int8", d), &x, |b, x| {
        b.iter(|| op.matmul(x))
    });
    group.bench_with_input(BenchmarkId::new("maddness_encode_only", d), &x, |b, x| {
        b.iter(|| op.encode_quantized(x))
    });
    group.finish();

    let mut group = c.benchmark_group("bdt_train");
    for &n in &[256usize, 1024] {
        let sub = calibration(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sub, |b, sub| {
            b.iter(|| BdtEncoder::train(sub, 4).expect("train"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_amm);
criterion_main!(benches);
