//! # maddpipe-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (run them with `cargo run -p maddpipe-bench --bin <name>
//! --release`), plus Criterion micro-benchmarks.
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig6` | energy vs area efficiency across VDD × corner |
//! | `fig7` | energy / latency / area breakdowns, Ndec = 4 vs 16 |
//! | `table1` | Ndec sweep of both efficiencies at 0.5 V and 0.8 V |
//! | `table2` | comparison against \[21\] and \[22\] |
//! | `accuracy` | the ResNet9 accuracy row of Table II |
//! | `dlc_latency` | Fig. 4 D/E data-dependent comparator delay |
//! | `ablation_async` | self-synchronous vs clocked pipeline (§III-A) |
//! | `ablation_rcd` | per-column RCD vs replica timing (§III-C) |
//! | `encoders` | encoding-function comparison (BDT vs LUT-NN vs PECAN) |
//! | `sweep_temp` | temperature sweep of the operating point |
//!
//! Every binary prints its table and appends it to `results/<name>.txt`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load_gen;

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Renders an aligned text table.
///
/// ```
/// let s = maddpipe_bench::render_table(
///     "demo",
///     &["a", "b"],
///     &[vec!["1".into(), "2".into()]],
/// );
/// assert!(s.contains("demo") && s.contains('1'));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Prints a report section and records it under `results/<name>.txt`
/// (best-effort: printing always succeeds even if the filesystem write
/// does not).
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// The `results/` directory at the workspace root (falls back to the
/// current directory when the workspace root cannot be located).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let base = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    base.parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Shared workloads for the event-kernel benchmarks, used by both the
/// Criterion bench (`benches/sim_kernel.rs`) and the `bench_sim` binary
/// that records `results/BENCH_sim.json` — one definition, so the two
/// always measure the same circuits.
pub mod kernel_workloads {
    use maddpipe_core::config::{MacroConfig, SUBVECTOR_LEN};
    use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
    use maddpipe_sim::cell::{Cell, EvalCtx};
    use maddpipe_sim::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Width of the bus in the bus-fanout workload.
    pub const BUS_WIDTH: usize = 16;

    /// A 16-input parity reducer as one behavioural cell — every bit of a
    /// bus lands on the same listener, the worst case for per-fanout-edge
    /// evaluation and the best case for delta-cycle batching.
    #[derive(Debug)]
    pub struct WideParity {
        delay: SimTime,
    }

    impl Cell for WideParity {
        fn num_inputs(&self) -> usize {
            BUS_WIDTH
        }

        fn num_outputs(&self) -> usize {
            1
        }

        fn eval(&mut self, ctx: &mut EvalCtx<'_>) {
            let mut acc = Logic::Low;
            for pin in 0..BUS_WIDTH {
                acc = acc ^ ctx.input(pin);
            }
            ctx.drive(0, acc, self.delay);
        }
    }

    /// An `n`-stage inverter chain; returns the simulator, the chain
    /// input and the chain output.
    pub fn inverter_chain(n: usize) -> (Simulator, NetId, NetId) {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let input = b.input("in");
        let mut node = input;
        for i in 0..n {
            node = b.inv(&format!("u{i}"), node);
        }
        (Simulator::new(b.build()), input, node)
    }

    /// A 128-input read-completion tree (the paper's per-column RCD
    /// reduction); returns the simulator and the tree's input nets.
    pub fn completion_tree_sim() -> (Simulator, Vec<NetId>) {
        use maddpipe_sram::rcd::build_completion_tree;
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let inputs: Vec<NetId> = (0..128).map(|i| b.input(format!("i{i}"))).collect();
        let _out = build_completion_tree(&mut b, "rcd", &inputs);
        (Simulator::new(b.build()), inputs)
    }

    /// A 16-bit bus fully fanned into one [`WideParity`] listener.
    pub fn bus_fanout_sim() -> (Simulator, Vec<NetId>) {
        let lib = CellLibrary::new(Technology::n22(), OperatingPoint::default());
        let mut b = CircuitBuilder::new(lib);
        let bus = b.bus("d", BUS_WIDTH);
        let y = b.net("parity");
        b.add_cell(
            "wp0",
            Box::new(WideParity {
                delay: SimTime::from_picos(40.0),
            }),
            &bus,
            &[y],
        );
        (Simulator::new(b.build()), bus)
    }

    /// A small but complete macro (2 decoders × 2 stages) plus a bag of
    /// random tokens to stream through it.
    #[allow(clippy::type_complexity)]
    pub fn macro_testbench() -> (AcceleratorRtl, Vec<Vec<[i8; SUBVECTOR_LEN]>>) {
        let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 17);
        let rtl = AcceleratorRtl::build(&cfg, &program);
        let mut rng = StdRng::seed_from_u64(99);
        let tokens = (0..16)
            .map(|_| {
                (0..cfg.ns)
                    .map(|_| {
                        let mut x = [0i8; SUBVECTOR_LEN];
                        for v in x.iter_mut() {
                            *v = rng.gen_range(-128i32..=127) as i8;
                        }
                        x
                    })
                    .collect()
            })
            .collect();
        (rtl, tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            "t",
            &["col", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(s.contains("== t =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("col") && lines[1].contains("value"));
    }

    #[test]
    fn results_dir_points_at_workspace() {
        let d = results_dir();
        assert!(d.ends_with("results"), "{d:?}");
    }
}
