//! # maddpipe-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (run them with `cargo run -p maddpipe-bench --bin <name>
//! --release`), plus Criterion micro-benchmarks.
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig6` | energy vs area efficiency across VDD × corner |
//! | `fig7` | energy / latency / area breakdowns, Ndec = 4 vs 16 |
//! | `table1` | Ndec sweep of both efficiencies at 0.5 V and 0.8 V |
//! | `table2` | comparison against \[21\] and \[22\] |
//! | `accuracy` | the ResNet9 accuracy row of Table II |
//! | `dlc_latency` | Fig. 4 D/E data-dependent comparator delay |
//! | `ablation_async` | self-synchronous vs clocked pipeline (§III-A) |
//! | `ablation_rcd` | per-column RCD vs replica timing (§III-C) |
//! | `encoders` | encoding-function comparison (BDT vs LUT-NN vs PECAN) |
//! | `sweep_temp` | temperature sweep of the operating point |
//!
//! Every binary prints its table and appends it to `results/<name>.txt`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Renders an aligned text table.
///
/// ```
/// let s = maddpipe_bench::render_table(
///     "demo",
///     &["a", "b"],
///     &[vec!["1".into(), "2".into()]],
/// );
/// assert!(s.contains("demo") && s.contains('1'));
/// ```
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Prints a report section and records it under `results/<name>.txt`
/// (best-effort: printing always succeeds even if the filesystem write
/// does not).
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// The `results/` directory at the workspace root (falls back to the
/// current directory when the workspace root cannot be located).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two up.
    let base = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    base.parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = render_table(
            "t",
            &["col", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(s.contains("== t =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("col") && lines[1].contains("value"));
    }

    #[test]
    fn results_dir_points_at_workspace() {
        let d = results_dir();
        assert!(d.ends_with("results"), "{d:?}");
    }
}
