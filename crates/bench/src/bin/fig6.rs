//! Regenerates **Fig. 6**: energy efficiency (TOPS/W) vs area efficiency
//! (TOPS/mm²) of the proposed macro across supply voltages 0.5–1.0 V and
//! process corners TTG/FFG/SSG/SFG/FSG, at the paper's sweep configuration
//! (Ndec = 4, NS = 4, 25 °C), including the best/worst encoder-latency
//! spread and the TTG best/worst average (the paper's dashed line).

use maddpipe_bench::{emit, render_table};
use maddpipe_core::prelude::*;

fn main() {
    let mut rows = Vec::new();
    for vdd in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        for corner in Corner::ALL {
            let cfg = MacroConfig::fig6().with_op(OperatingPoint::new(Volts(vdd), corner));
            let r = MacroModel::new(cfg).evaluate();
            rows.push(vec![
                format!("{vdd:.1}"),
                corner.to_string(),
                format!("{:.1}", r.tops_per_watt),
                format!("{:.2}", r.tops_min / r.area.total().as_mm2()),
                format!("{:.2}", r.tops_max / r.area.total().as_mm2()),
                format!("{:.2}", r.tops_per_mm2),
            ]);
        }
    }
    let mut out = render_table(
        "Fig. 6 — efficiency across supply voltage and process corner (Ndec=4, NS=4)",
        &[
            "VDD [V]",
            "corner",
            "TOPS/W",
            "TOPS/mm² (worst)",
            "TOPS/mm² (best)",
            "TOPS/mm² (avg)",
        ],
        &rows,
    );

    // The paper's annotated TTG-average anchor points for comparison.
    let paper = [
        (0.5, 164.0, 1.45),
        (0.6, 123.0, 3.46),
        (0.7, 92.8, 5.94),
        (0.8, 72.2, 8.55),
        (0.9, 57.5, 11.03),
        (1.0, 46.6, 13.25),
    ];
    let mut cmp = Vec::new();
    for (vdd, p_w, p_a) in paper {
        let cfg = MacroConfig::fig6().with_op(OperatingPoint::new(Volts(vdd), Corner::Ttg));
        let r = MacroModel::new(cfg).evaluate();
        cmp.push(vec![
            format!("{vdd:.1}"),
            format!("{p_w:.1}"),
            format!("{:.1}", r.tops_per_watt),
            format!("{p_a:.2}"),
            format!("{:.2}", r.tops_per_mm2),
        ]);
    }
    out.push('\n');
    out.push_str(&render_table(
        "Fig. 6 — paper vs model (TTG average)",
        &[
            "VDD [V]",
            "paper TOPS/W",
            "model TOPS/W",
            "paper TOPS/mm²",
            "model TOPS/mm²",
        ],
        &cmp,
    ));

    // Prior-work stars for reference.
    out.push_str(
        "\nprior-work references: [21] 69 TOPS/W / 0.40 TOPS/mm² (22nm-scaled), \
         [22] 43.1 TOPS/W / 2.70 TOPS/mm² (22nm-scaled)\n",
    );
    emit("fig6", &out);
}
