//! Regenerates **Table II**: the comparison of the proposed macro
//! (Ndec = 16, NS = 32, at 0.5 V and 0.8 V) against the analog DTC
//! accelerator \[21\] and Stella Nera \[22\], including the 22 nm area
//! normalisation and the per-component energies. Accuracy rows are
//! produced by the separate `accuracy` binary (they require training).

use maddpipe_baselines::prelude::*;
use maddpipe_bench::{emit, render_table};
use maddpipe_core::prelude::*;

fn main() {
    let analog = AnalogDtcPpa::published();
    let stella = StellaNeraPpa::published();
    let p05 = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg)),
    )
    .evaluate();
    let p08 = MacroModel::new(
        MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg)),
    )
    .evaluate();

    let enc_dec_fj = |r: &PpaReport| {
        let ops = (maddpipe_core::OPS_PER_LOOKUP * r.ndec) as f64;
        (
            r.block_energy.encoder.as_femtos() / ops,
            (r.block_energy.decoder.as_femtos()) / ops,
        )
    };
    let (enc05, dec05) = enc_dec_fj(&p05);
    let (enc08, dec08) = enc_dec_fj(&p08);

    let rows = vec![
        vec![
            "process [nm]".into(),
            "65 (planar, analog)".into(),
            "14 (FinFET)".into(),
            "22 (planar)".into(),
            "22 (planar)".into(),
        ],
        vec![
            "supply [V]".into(),
            format!("{:.2}", analog.vdd.0),
            format!("{:.2}", stella.vdd.0),
            "0.50".into(),
            "0.80".into(),
        ],
        vec![
            "area [mm²]".into(),
            format!("{:.2}", analog.area.as_mm2()),
            format!("{:.2}", stella.area.as_mm2()),
            format!("{:.2}", p05.area.total().as_mm2()),
            format!("{:.2}", p08.area.total().as_mm2()),
        ],
        vec![
            "frequency [MHz]".into(),
            format!("{:.0}", analog.frequency.as_mega_hertz()),
            format!("{:.0}", stella.frequency.as_mega_hertz()),
            format!(
                "{:.1}–{:.1}",
                p05.freq_min.as_mega_hertz(),
                p05.freq_max.as_mega_hertz()
            ),
            format!(
                "{:.0}–{:.0}",
                p08.freq_min.as_mega_hertz(),
                p08.freq_max.as_mega_hertz()
            ),
        ],
        vec![
            "throughput [TOPS]".into(),
            format!("{:.3}", analog.tops()),
            format!("{:.1}", stella.tops),
            format!("{:.2}–{:.2}", p05.tops_min, p05.tops_max),
            format!("{:.2}–{:.2}", p08.tops_min, p08.tops_max),
        ],
        vec![
            "energy eff. [TOPS/W]".into(),
            format!("{:.0}", analog.tops_per_watt()),
            format!("{:.1}", stella.tops_per_watt()),
            format!("{:.0}", p05.tops_per_watt),
            format!("{:.1}", p08.tops_per_watt),
        ],
        vec![
            "area eff. [TOPS/mm²]".into(),
            format!(
                "{:.2} ({:.2})",
                analog.area_efficiency(),
                analog.area_efficiency_scaled_to(22.0)
            ),
            format!(
                "{:.1} ({:.2})",
                stella.area_efficiency(),
                stella.area_efficiency_scaled_to(22.0)
            ),
            format!("{:.2}", p05.tops_per_mm2),
            format!("{:.2}", p08.tops_per_mm2),
        ],
        vec![
            "encoder [fJ/op]".into(),
            format!("{:.2}", analog.energy_encoder_per_op.as_femtos()),
            format!("{:.2}", stella.energy_encoder_per_op.as_femtos()),
            format!("{enc05:.3}"),
            format!("{enc08:.2}"),
        ],
        vec![
            "decoder [fJ/op]".into(),
            format!("{:.2}", analog.energy_decoder_per_op.as_femtos()),
            format!("{:.2}", stella.energy_decoder_per_op.as_femtos()),
            format!("{dec05:.1}"),
            format!("{dec08:.1}"),
        ],
        vec![
            "ResNet9 accuracy".into(),
            format!("{:.1}% (noisy analog)", analog.resnet9_accuracy * 100.0),
            format!("{:.1}%", stella.resnet9_accuracy * 100.0),
            "= [22] (same algo)".into(),
            "= [22] (same algo)".into(),
        ],
    ];
    let mut out = render_table(
        "Table II — comparison to prior accelerators (proposed: Ndec=16, NS=32)",
        &[
            "metric",
            "[21] TCAS-I'23",
            "[22] Stella Nera",
            "proposed @0.5V",
            "proposed @0.8V",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nheadline ratios at 0.5 V: {:.1}× energy efficiency and {:.1}× area efficiency vs [21]\n\
         (paper: 2.5× and 5×); {:.1}× energy efficiency vs [22] (paper: 4.0×).\n\
         accuracy rows are reproduced by `cargo run -p maddpipe-bench --bin accuracy --release`.\n",
        p05.tops_per_watt / analog.tops_per_watt(),
        p05.tops_per_mm2 / analog.area_efficiency_scaled_to(22.0),
        p05.tops_per_watt / stella.tops_per_watt(),
    ));
    emit("table2", &out);
}
