//! Machine-readable event-kernel and backend performance snapshot.
//!
//! Times the same workloads as the `sim_kernel` Criterion group with a
//! plain `Instant` loop — plus the execution backends of the unified
//! session API — and writes `results/BENCH_sim.json` (events/sec and
//! tokens/sec), so the performance trajectory can be tracked across PRs
//! with `git diff` instead of eyeballing bench logs.
//!
//! Run with `cargo run -p maddpipe-bench --bin bench_sim --release`.
//! With `--smoke` it runs only a tiny replica-pool load-generator
//! scenario (seconds, no file write) — the CI sanity check that the
//! serving path still moves tokens.

use maddpipe_bench::kernel_workloads::{
    bus_fanout_sim, completion_tree_sim, inverter_chain, macro_testbench,
};
use maddpipe_bench::load_gen::{drive, LoadMode, LoadScenario};
use maddpipe_core::batched::LaneKernel;
use maddpipe_core::config::MacroConfig;
use maddpipe_core::macro_rtl::MacroProgram;
use maddpipe_nn::network::Network;
use maddpipe_runtime::prelude::*;
use maddpipe_sim::prelude::*;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Median of repeated timed runs of `f`, where each run reports how many
/// *units* (events, tokens) it processed. Returns units per second.
fn median_rate(runs: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut rates: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let units = f();
            units as f64 / t0.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    rates[rates.len() / 2]
}

fn chain_events_per_sec(n: usize, toggles: u64) -> f64 {
    let (mut sim, input, _) = inverter_chain(n);
    sim.poke(input, Logic::Low);
    sim.run_to_quiescence().expect("settle");
    let mut level = Logic::High;
    median_rate(7, || {
        let e0 = sim.stats().events_popped;
        for _ in 0..toggles {
            sim.poke(input, level);
            level = !level;
            sim.run_to_quiescence().expect("propagate");
        }
        sim.stats().events_popped - e0
    })
}

fn tree_events_per_sec() -> f64 {
    let (mut sim, inputs) = completion_tree_sim();
    for &i in &inputs {
        sim.poke(i, Logic::Low);
    }
    sim.run_to_quiescence().expect("settle");
    let mut high = true;
    median_rate(7, || {
        let e0 = sim.stats().events_popped;
        for _ in 0..2_000 {
            for &i in &inputs {
                sim.poke(i, Logic::from_bool(high));
            }
            high = !high;
            sim.run_to_quiescence().expect("propagate");
        }
        sim.stats().events_popped - e0
    })
}

fn bus_fanout_events_per_sec() -> f64 {
    let (mut sim, bus) = bus_fanout_sim();
    sim.poke_bus(&bus, 0);
    sim.run_to_quiescence().expect("settle");
    let mut pattern: u64 = 0xA5A5;
    median_rate(7, || {
        let e0 = sim.stats().events_popped;
        for _ in 0..20_000 {
            sim.poke_bus(&bus, pattern & 0xFFFF);
            pattern = !pattern;
            sim.run_to_quiescence().expect("propagate");
        }
        sim.stats().events_popped - e0
    })
}

fn macro_tokens_per_sec() -> (f64, f64) {
    let (mut rtl, tokens) = macro_testbench();
    let mut k = 0usize;
    let tokens_rate = median_rate(5, || {
        let n = 64u64;
        for _ in 0..n {
            let token = &tokens[k % tokens.len()];
            k += 1;
            rtl.run_token(token).expect("token completes");
        }
        n
    });
    // Events per second while running the macro — the kernel-level view
    // of the same workload.
    let e0 = rtl.simulator().stats().events_popped;
    let t0 = Instant::now();
    for _ in 0..64 {
        let token = &tokens[k % tokens.len()];
        k += 1;
        rtl.run_token(token).expect("token completes");
    }
    let events = rtl.simulator().stats().events_popped - e0;
    let events_rate = events as f64 / t0.elapsed().as_secs_f64();
    (tokens_rate, events_rate)
}

/// Functional-backend throughput at the paper's flagship shape, for the
/// given worker count and kernel — the thread-scaling rows of the
/// snapshot. The `Scalar` rows keep the historical
/// `backend_tokens_per_sec` baseline comparable across PRs; the batched
/// lane kernels are reported in the `functional_simd` section against it.
fn functional_tokens_per_sec(workers: usize, kernel: FunctionalKernel) -> f64 {
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    let batch = TokenBatch::random(cfg.ns, 1024, 11);
    let mut backend = FunctionalBackend::with_kernel(program, workers, kernel);
    median_rate(7, || {
        backend.run_batch(&batch).expect("batch completes");
        batch.len() as u64
    })
}

/// Sharded-backend throughput on a wide layer (64 decoder chains = 4×
/// the flagship macro width) split across `shards` functional macro
/// instances — the shard-scaling row of the snapshot. Like the
/// functional thread scaling, interpret against `host_cpus`.
fn sharded_tokens_per_sec(shards: usize) -> f64 {
    let cfg = MacroConfig::new(64, MacroConfig::paper_flagship().ns);
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    let batch = TokenBatch::random(cfg.ns, 512, 11);
    let mut session = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Sharded {
            shards,
            inner: ShardKind::Functional { workers: 1 },
        })
        .build()
        .expect("random program fits its own shape");
    median_rate(7, || {
        session.run(&batch).expect("batch completes");
        batch.len() as u64
    })
}

/// The content-addressed result cache on a repeated-patch workload: a
/// 1024-token batch drawn from a 32-token alphabet (flat image regions
/// re-emitting the same im2col windows) at the flagship shape. Cold is
/// the plain functional backend on that batch; warm is a `CachedBackend`
/// replaying it after one fill pass. Returns the cold and warm median
/// rates plus the measured hit-rate and intra-batch dedup count — the
/// proof the warm number comes from real cache traffic.
fn cache_snapshot() -> (f64, f64, f64, u64) {
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    let alphabet = TokenBatch::random(cfg.ns, 32, 11).into_tokens();
    let tokens: Vec<Token> = (0..1024)
        .map(|i| alphabet[(i * 7) % alphabet.len()].clone())
        .collect();
    let batch = TokenBatch::new(tokens).expect("non-empty");
    let mut cold = Session::builder(cfg.clone())
        .program(program.clone())
        .backend(BackendKind::Functional { workers: 1 })
        .build()
        .expect("random program fits its own shape");
    let cold_rate = median_rate(7, || {
        cold.run(&batch).expect("batch completes");
        batch.len() as u64
    });
    let mut cached = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Functional { workers: 1 },
        })
        .build()
        .expect("random program fits its own shape");
    cached.run(&batch).expect("fill pass completes");
    let warm_rate = median_rate(7, || {
        cached.run(&batch).expect("batch completes");
        batch.len() as u64
    });
    let cache = cached.stats().cache();
    (
        cold_rate,
        warm_rate,
        cache.hit_rate().unwrap_or(0.0),
        cache.dedup,
    )
}

/// Serving-queue throughput and latency at the flagship shape:
/// `clients` submitter threads push bursts through one `ServeQueue` over
/// a single-worker functional backend. Returns the median tokens/s plus
/// the queue-wait p50/p99 (µs) and mean coalesced micro-batch size
/// accumulated over *all* timed repetitions (the queue is long-lived,
/// like the sessions of the sibling benches) — the queue-side view
/// `SessionStats` adds on top of the backend rates above. Like the
/// thread/shard scaling, interpret against `host_cpus`.
fn serving_queue_snapshot(clients: usize) -> (f64, f64, f64, f64) {
    let cfg = MacroConfig::paper_flagship();
    let ns = cfg.ns;
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    let requests_per_client = 16usize;
    let tokens_per_request = 64usize;
    // One long-lived queue, like the sessions of the sibling benches:
    // construction and shutdown stay outside the timed serve spans.
    let queue = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Functional { workers: 1 })
        .into_serving(
            QueuePolicy::default()
                .with_max_batch(256)
                .with_max_linger(Duration::from_micros(100)),
        )
        .expect("queue comes up");
    // Pre-generate every client's bursts, mirroring the pre-built batch
    // of the sibling benches; the timed span clones and serves them.
    let bursts: Vec<Vec<TokenBatch>> = (0..clients)
        .map(|c| {
            (0..requests_per_client)
                .map(|r| TokenBatch::random(ns, tokens_per_request, (c * 1000 + r) as u64))
                .collect()
        })
        .collect();
    let rate = median_rate(5, || {
        std::thread::scope(|scope| {
            for burst in &bursts {
                let queue = &queue;
                scope.spawn(move || {
                    let tickets: Vec<_> = burst
                        .iter()
                        .map(|batch| queue.submit(batch.clone()).expect("within the depth bound"))
                        .collect();
                    for ticket in tickets {
                        ticket.wait().expect("served");
                    }
                });
            }
        });
        (clients * requests_per_client * tokens_per_request) as u64
    });
    let stats = queue.shutdown();
    let wait_us = |p: Option<Duration>| p.map_or(0.0, |d| d.as_secs_f64() * 1e6);
    (
        rate,
        wait_us(stats.p50_queue_wait()),
        wait_us(stats.p99_queue_wait()),
        stats.mean_coalesced_batch(),
    )
}

/// A flagship-shaped replica pool over single-worker functional
/// replicas, round-robin fairness, serving-bench queue bounds.
fn flagship_pool(replicas: usize, max_depth: usize) -> ReplicaPool {
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Functional { workers: 1 })
        .into_pool(
            ServePolicy::default()
                .with_replicas(replicas)
                .with_fairness(Fairness::RoundRobin)
                .with_queue(
                    QueuePolicy::default()
                        .with_max_batch(256)
                        .with_max_linger(Duration::from_micros(100))
                        .with_max_depth(max_depth),
                ),
        )
        .expect("pool comes up")
}

/// Closed-loop replica scaling at the flagship shape: 8 clients keep
/// the pool saturated; returns the median goodput (tokens/s) over
/// repeated runs against one long-lived pool.
fn replica_pool_tokens_per_sec(replicas: usize) -> f64 {
    let pool = flagship_pool(replicas, 4096);
    let scenario = LoadScenario {
        clients: 8,
        tokens_per_request: 64,
        mode: LoadMode::Closed {
            requests_per_client: 16,
        },
        seed: 11,
    };
    let rate = median_rate(5, || {
        let report = drive(&pool, &scenario);
        assert_eq!(report.rejected_requests, 0, "closed loop never rejects");
        report.served_tokens
    });
    pool.shutdown();
    rate
}

/// A flagship-shaped pool of chaos-wrapped functional replicas: every
/// replica draws deterministic faults — seeded transient errors plus
/// one forced crash — from one shared schedule, and the recovery
/// policy retries and respawns through them.
fn chaos_pool(replicas: usize, chaos: ChaosConfig, max_depth: usize) -> ReplicaPool {
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    let state = ChaosState::new();
    let recipes = (0..replicas)
        .map(|_| {
            let cfg = cfg.clone();
            let program = program.clone();
            let recipe: ReplicaFactory = std::sync::Arc::new(move || {
                BackendKind::Functional { workers: 1 }.build(&cfg, program.clone())
            });
            wrap_recipe(recipe, chaos, std::sync::Arc::clone(&state))
        })
        .collect();
    ReplicaPool::from_recipes(
        ServePolicy::default()
            .with_fairness(Fairness::RoundRobin)
            .with_queue(
                QueuePolicy::default()
                    .with_max_batch(256)
                    .with_max_linger(Duration::from_micros(100))
                    .with_max_depth(max_depth),
            )
            .with_recovery(
                RecoveryPolicy::default()
                    .with_max_retries(8)
                    .with_backoff(Duration::from_micros(50))
                    .with_respawn(2),
            ),
        cfg.ns,
        recipes,
    )
    .expect("chaos pool comes up")
}

/// Closed-loop goodput through a 2-replica pool under injected faults —
/// the same scenario as the fault-free `flagship_r2` row, so the delta
/// between the two IS the price of ~15% transient failures plus one
/// replica crash. Returns (goodput tokens/s, failed share, retries,
/// respawns).
fn chaos_goodput(seed: u64) -> (f64, f64, u64, u64) {
    let chaos = ChaosConfig::default()
        .with_seed(seed)
        .with_transient_rate(0.15)
        .with_panic_on_call(5);
    let pool = chaos_pool(2, chaos, 4096);
    let report = drive(
        &pool,
        &LoadScenario {
            clients: 8,
            tokens_per_request: 64,
            mode: LoadMode::Closed {
                requests_per_client: 16,
            },
            seed: 11,
        },
    );
    let stats = pool.shutdown();
    (
        report.goodput_tokens_per_sec().unwrap_or(0.0),
        report.failed_share(),
        stats.retries(),
        stats.pool_health().restarts,
    )
}

/// Open-loop saturation probe: offer ~2x the measured closed-loop
/// capacity into a depth-bounded 2-replica pool and report what comes
/// out the other side — (offered rps, goodput tokens/s, p99 wait µs,
/// rejected share).
fn replica_pool_saturation(capacity_tokens_per_sec: f64) -> (f64, f64, f64, f64) {
    let tokens_per_request = 64usize;
    let offered_rps = (2.0 * capacity_tokens_per_sec / tokens_per_request as f64).max(50.0);
    let pool = flagship_pool(2, 64);
    let report = drive(
        &pool,
        &LoadScenario {
            clients: 8,
            tokens_per_request,
            mode: LoadMode::Open {
                offered_rps,
                duration: Duration::from_millis(500),
            },
            seed: 13,
        },
    );
    pool.shutdown();
    let p99_us = report.p99_wait().map_or(0.0, |d| d.as_secs_f64() * 1e6);
    (
        offered_rps,
        report.goodput_tokens_per_sec().unwrap_or(0.0),
        p99_us,
        report.rejected_share(),
    )
}

/// One full demo-CNN pipeline run: `images` submissions streamed
/// through the lowered `Network::demo` graph (functional conv stages,
/// 2 replicas each), returning end-to-end images/s plus each stage's
/// `(name, occupancy, p99 residence µs)` from the final stats.
fn pipeline_snapshot(images: usize) -> (f64, Vec<(String, f64, f64)>) {
    let net = Network::demo(42);
    let spec = net
        .to_pipeline_spec(
            BackendKind::Functional { workers: 1 },
            &StagePolicy::default().with_replicas(2),
        )
        .expect("the demo network lowers");
    let graph = PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(32))
        .expect("graph deploys");
    let inputs: Vec<Vec<f32>> = (0..images)
        .map(|i| Network::demo_image(i as u64, net.input_len()))
        .collect();
    let mut pending = Vec::with_capacity(images);
    for img in &inputs {
        loop {
            match graph.submit(img.clone()) {
                Ok(t) => break pending.push(t),
                Err(BackendError::QueueFull { .. }) => {
                    // Closed-ish loop: drain the oldest under backpressure.
                    let _ = pending.remove(0).wait();
                }
                Err(e) => panic!("pipeline submit failed: {e}"),
            }
        }
    }
    for ticket in pending {
        ticket.wait().expect("pipeline serves");
    }
    let stats = graph.shutdown();
    let occupancy = stats.stage_occupancy();
    let profiles = stats
        .stage_profiles()
        .iter()
        .zip(occupancy)
        .map(|(p, occ)| {
            let p99 = p.p99_residence().map_or(0.0, |d| d.as_secs_f64() * 1e6);
            (p.name().to_string(), occ, p99)
        })
        .collect();
    (stats.images_per_sec().unwrap_or(0.0), profiles)
}

/// The `--smoke` path: a tiny closed-loop and open-loop run through a
/// 2-replica pool, printed but never written to `results/` — enough
/// for CI to prove the serving path moves tokens.
fn smoke() {
    // Batched-kernel pass: both lane kernels bit-identical to the scalar
    // spec on a ragged (non-lane-multiple) flagship batch — the contract
    // behind the `functional_simd` rows of the full snapshot.
    {
        let cfg = MacroConfig::paper_flagship();
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
        let batch = TokenBatch::random(cfg.ns, 130, 3);
        let golden: Vec<Vec<i16>> = batch
            .tokens()
            .iter()
            .map(|t| program.reference_output(t))
            .collect();
        let view = program.batched();
        for kernel in [LaneKernel::Portable, LaneKernel::BitSliced] {
            assert_eq!(
                view.evaluate_with(batch.tokens(), kernel),
                golden,
                "{kernel:?} diverged from the scalar spec"
            );
        }
        println!(
            "smoke batched: both lane kernels bit-identical to the scalar spec on {} tokens (default: {:?})",
            batch.len(),
            FunctionalKernel::default()
        );
    }
    let pool = flagship_pool(2, 64);
    let closed = drive(
        &pool,
        &LoadScenario {
            clients: 4,
            tokens_per_request: 16,
            mode: LoadMode::Closed {
                requests_per_client: 4,
            },
            seed: 11,
        },
    );
    let open = drive(
        &pool,
        &LoadScenario {
            clients: 4,
            tokens_per_request: 16,
            mode: LoadMode::Open {
                offered_rps: 200.0,
                duration: Duration::from_millis(100),
            },
            seed: 13,
        },
    );
    let stats = pool.shutdown();
    assert_eq!(closed.served_requests, closed.offered_requests);
    assert_eq!(
        open.served_requests + open.rejected_requests + open.failed_requests,
        open.offered_requests
    );
    println!(
        "smoke closed: {}/{} requests served, {} tokens",
        closed.served_requests, closed.offered_requests, closed.served_tokens
    );
    println!(
        "smoke open:   {}/{} requests served, {} rejected",
        open.served_requests, open.offered_requests, open.rejected_requests
    );
    println!("smoke pool:   {stats}");
    // Chaos pass: the same closed loop through replicas injecting
    // seeded transient faults and one forced crash — every offered
    // request must still be accounted for, and the pool must have
    // actually recovered (retried or respawned), not merely survived.
    // Panicking on call 0 keeps the crash deterministic however far
    // the closed burst coalesces; a 30% transient rate rides along.
    let chaotic = chaos_pool(
        2,
        ChaosConfig::default()
            .with_seed(7)
            .with_transient_rate(0.3)
            .with_panic_on_call(0),
        64,
    );
    let faulted = drive(
        &chaotic,
        &LoadScenario {
            clients: 4,
            tokens_per_request: 16,
            mode: LoadMode::Closed {
                requests_per_client: 4,
            },
            seed: 11,
        },
    );
    let chaos_stats = chaotic.shutdown();
    assert_eq!(
        faulted.served_requests + faulted.failed_requests,
        faulted.offered_requests,
        "a closed loop never rejects; everything serves or fails"
    );
    assert!(
        faulted.served_requests > 0,
        "faults must not starve goodput"
    );
    assert!(
        chaos_stats.retries() + chaos_stats.pool_health().restarts > 0,
        "the chaos schedule injected nothing — seed or rates regressed"
    );
    println!(
        "smoke chaos:  {}/{} requests served through faults, {} retries, {} respawns",
        faulted.served_requests,
        faulted.offered_requests,
        chaos_stats.retries(),
        chaos_stats.pool_health().restarts
    );
    // Cache pass: a duplicate-heavy batch twice through a cached
    // 2-replica pool — the counters must show real hits and dedup, or
    // the cache tier stopped doing anything while staying correct.
    let cfg = MacroConfig::paper_flagship();
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
    let alphabet = TokenBatch::random(cfg.ns, 8, 11).into_tokens();
    let dup_batch = TokenBatch::new(
        (0..64)
            .map(|i| alphabet[(i * 3) % alphabet.len()].clone())
            .collect(),
    )
    .expect("non-empty");
    let cached_pool = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Cached {
            cache: CacheConfig::default(),
            inner: CachedKind::Functional { workers: 1 },
        })
        .into_pool(ServePolicy::default().with_replicas(2))
        .expect("cached pool comes up");
    // Four rounds: every replica's private store sees the batch at
    // least twice, so warm hits show up alongside the dedup.
    for _ in 0..4 {
        cached_pool
            .submit(dup_batch.clone())
            .expect("accepted")
            .wait()
            .expect("served");
    }
    let cache_stats = cached_pool.shutdown();
    assert!(
        cache_stats.cache_hits() + cache_stats.cache_dedup() > 0,
        "a duplicate-heavy batch produced no cache traffic"
    );
    assert!(cache_stats.cache_misses() > 0);
    println!(
        "smoke cache:  {} hits, {} misses, {} deduped over {} tokens",
        cache_stats.cache_hits(),
        cache_stats.cache_misses(),
        cache_stats.cache_dedup(),
        cache_stats.tokens()
    );
    // Pipeline pass: a handful of images through the lowered demo CNN,
    // checked bit-identical to the host forward — proof the dataflow
    // serving path moves whole images, not just tokens.
    let net = Network::demo(42);
    let spec = net
        .to_pipeline_spec(
            BackendKind::Functional { workers: 1 },
            &StagePolicy::default(),
        )
        .expect("the demo network lowers");
    let stages = spec.len();
    let graph = PipelineGraph::build(spec, PipelinePolicy::default().with_capacity(16))
        .expect("graph deploys");
    let smoke_images: Vec<Vec<f32>> = (0..8)
        .map(|i| Network::demo_image(i as u64, net.input_len()))
        .collect();
    let tickets: Vec<PipelineTicket> = smoke_images
        .iter()
        .map(|img| graph.submit(img.clone()).expect("within capacity"))
        .collect();
    for (img, ticket) in smoke_images.iter().zip(tickets) {
        let reply = ticket.wait().expect("pipeline serves");
        assert_eq!(
            reply.outputs,
            net.forward(img).expect("host forward"),
            "pipeline logits must be bit-identical to Network::forward"
        );
    }
    let pipe_stats = graph.shutdown();
    assert_eq!(pipe_stats.images(), 8);
    assert_eq!(pipe_stats.stage_profiles().len(), stages);
    println!(
        "smoke pipeline: {} images through {} stages, bit-identical logits",
        pipe_stats.images(),
        stages
    );
}

/// RTL-backend throughput on the small reference macro, per fidelity.
fn rtl_tokens_per_sec(fidelity: Fidelity) -> f64 {
    let cfg = MacroConfig::new(2, 2).with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg));
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 17);
    let batch = TokenBatch::random(cfg.ns, 64, 99);
    let mut session = Session::builder(cfg)
        .program(program)
        .backend(BackendKind::Rtl { fidelity })
        .build()
        .expect("random program fits its own shape");
    median_rate(5, || {
        session.run(&batch).expect("batch completes");
        batch.len() as u64
    })
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let chain64 = chain_events_per_sec(64, 20_000);
    let chain512 = chain_events_per_sec(512, 4_000);
    let tree = tree_events_per_sec();
    let bus = bus_fanout_events_per_sec();
    let (macro_tokens, macro_events) = macro_tokens_per_sec();
    // Functional-backend thread scaling is only meaningful relative to
    // the host's core count, so record it alongside the rates.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fun_w1 = functional_tokens_per_sec(1, FunctionalKernel::Scalar);
    let fun_w2 = functional_tokens_per_sec(2, FunctionalKernel::Scalar);
    let fun_w4 = functional_tokens_per_sec(4, FunctionalKernel::Scalar);
    let simd_portable_w1 = functional_tokens_per_sec(1, FunctionalKernel::Portable);
    let simd_bitsliced_w1 = functional_tokens_per_sec(1, FunctionalKernel::BitSliced);
    let (default_kernel_name, simd_w1) = match FunctionalKernel::default() {
        FunctionalKernel::BitSliced => ("bitsliced", simd_bitsliced_w1),
        _ => ("portable", simd_portable_w1),
    };
    let simd_host = functional_tokens_per_sec(cpus, FunctionalKernel::default());
    let shd_s1 = sharded_tokens_per_sec(1);
    let shd_s2 = sharded_tokens_per_sec(2);
    let shd_s4 = sharded_tokens_per_sec(4);
    let rtl_seq = rtl_tokens_per_sec(Fidelity::Sequential);
    let rtl_pip = rtl_tokens_per_sec(Fidelity::Pipelined);
    let (cache_cold, cache_warm, cache_hit_rate, cache_dedup) = cache_snapshot();
    let (sq_c1, _, _, _) = serving_queue_snapshot(1);
    let (sq_c4, sq_p50, sq_p99, sq_coalesced) = serving_queue_snapshot(4);
    let rp_r1 = replica_pool_tokens_per_sec(1);
    let rp_r2 = replica_pool_tokens_per_sec(2);
    let rp_r4 = replica_pool_tokens_per_sec(4);
    let (rp_offered, rp_goodput, rp_p99, rp_rejected) = replica_pool_saturation(rp_r2);
    let (ch_goodput, ch_failed, ch_retries, ch_restarts) = chaos_goodput(42);
    let (pipe_rate, pipe_stages) = pipeline_snapshot(2048);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"maddpipe-bench-sim/v1\",");
    let _ = writeln!(
        json,
        "  \"note\": \"median rates from cargo run -p maddpipe-bench --bin bench_sim --release\","
    );
    let _ = writeln!(json, "  \"host_cpus\": {cpus},");
    let _ = writeln!(json, "  \"events_per_sec\": {{");
    let _ = writeln!(json, "    \"inverter_chain_64\": {chain64:.0},");
    let _ = writeln!(json, "    \"inverter_chain_512\": {chain512:.0},");
    let _ = writeln!(json, "    \"completion_tree_128\": {tree:.0},");
    let _ = writeln!(json, "    \"bus_fanout_16\": {bus:.0},");
    let _ = writeln!(json, "    \"macro_ndec2_ns2\": {macro_events:.0}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"tokens_per_sec\": {{");
    let _ = writeln!(json, "    \"macro_ndec2_ns2\": {macro_tokens:.1}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"backend_tokens_per_sec\": {{");
    let _ = writeln!(json, "    \"functional_flagship_w1\": {fun_w1:.0},");
    let _ = writeln!(json, "    \"functional_flagship_w2\": {fun_w2:.0},");
    let _ = writeln!(json, "    \"functional_flagship_w4\": {fun_w4:.0},");
    let _ = writeln!(json, "    \"sharded_wide64_s1\": {shd_s1:.0},");
    let _ = writeln!(json, "    \"sharded_wide64_s2\": {shd_s2:.0},");
    let _ = writeln!(json, "    \"sharded_wide64_s4\": {shd_s4:.0},");
    let _ = writeln!(json, "    \"rtl_ndec2_ns2_sequential\": {rtl_seq:.1},");
    let _ = writeln!(json, "    \"rtl_ndec2_ns2_pipelined\": {rtl_pip:.1}");
    let _ = writeln!(json, "  }},");
    // The batched lane kernels of the functional backend, against the
    // scalar `functional_flagship_w1` baseline above (which deliberately
    // still measures the one-token-at-a-time executable spec). `w1` is
    // the kernel the `simd` cargo feature selects as the default.
    let _ = writeln!(json, "  \"functional_simd\": {{");
    let _ = writeln!(json, "    \"default_kernel\": \"{default_kernel_name}\",");
    let _ = writeln!(
        json,
        "    \"portable_w1_tokens_per_sec\": {simd_portable_w1:.0},"
    );
    let _ = writeln!(
        json,
        "    \"bitsliced_w1_tokens_per_sec\": {simd_bitsliced_w1:.0},"
    );
    let _ = writeln!(json, "    \"w1_tokens_per_sec\": {simd_w1:.0},");
    let _ = writeln!(json, "    \"host_cpus_tokens_per_sec\": {simd_host:.0},");
    let _ = writeln!(
        json,
        "    \"speedup_w1_vs_scalar\": {:.2}",
        simd_w1 / fun_w1
    );
    let _ = writeln!(json, "  }},");
    // The result cache tier on the repeated-patch workload: warm replay
    // rate against the uncached cold rate, with the measured hit-rate
    // and intra-batch dedup count proving the speedup is cache traffic.
    let _ = writeln!(json, "  \"cache\": {{");
    let _ = writeln!(
        json,
        "    \"repeated_patch_cold_tokens_per_sec\": {cache_cold:.0},"
    );
    let _ = writeln!(
        json,
        "    \"repeated_patch_warm_tokens_per_sec\": {cache_warm:.0},"
    );
    let _ = writeln!(json, "    \"warm_hit_rate\": {cache_hit_rate:.4},");
    let _ = writeln!(json, "    \"intra_batch_dedup_tokens\": {cache_dedup}");
    let _ = writeln!(json, "  }},");
    // The async serving queue in front of the flagship functional
    // backend: throughput at 1/4 submitter threads plus the queue-side
    // latency picture of the 4-client run.
    let _ = writeln!(json, "  \"serving_queue\": {{");
    let _ = writeln!(json, "    \"flagship_c1_tokens_per_sec\": {sq_c1:.0},");
    let _ = writeln!(json, "    \"flagship_c4_tokens_per_sec\": {sq_c4:.0},");
    let _ = writeln!(json, "    \"flagship_c4_queue_wait_p50_us\": {sq_p50:.1},");
    let _ = writeln!(json, "    \"flagship_c4_queue_wait_p99_us\": {sq_p99:.1},");
    let _ = writeln!(
        json,
        "    \"flagship_c4_mean_coalesced_tokens\": {sq_coalesced:.1}"
    );
    let _ = writeln!(json, "  }},");
    // The replica pool behind the same flagship shape: closed-loop
    // goodput as the replica count scales (8 clients, round-robin),
    // plus an open-loop probe at ~2x capacity showing saturation
    // behaviour — goodput, tail wait and the rejected share.
    let _ = writeln!(json, "  \"replica_pool\": {{");
    let _ = writeln!(json, "    \"flagship_r1_tokens_per_sec\": {rp_r1:.0},");
    let _ = writeln!(json, "    \"flagship_r2_tokens_per_sec\": {rp_r2:.0},");
    let _ = writeln!(json, "    \"flagship_r4_tokens_per_sec\": {rp_r4:.0},");
    let _ = writeln!(json, "    \"saturation_offered_rps\": {rp_offered:.0},");
    let _ = writeln!(
        json,
        "    \"saturation_goodput_tokens_per_sec\": {rp_goodput:.0},"
    );
    let _ = writeln!(json, "    \"saturation_queue_wait_p99_us\": {rp_p99:.1},");
    let _ = writeln!(json, "    \"saturation_rejected_share\": {rp_rejected:.3}");
    let _ = writeln!(json, "  }},");
    // Goodput under injected faults: the fault-free flagship_r2 row
    // re-run with ~15% seeded transient failures and one forced replica
    // crash — the gap between the two is what the recovery machinery
    // (retry + respawn) costs, and the retry/restart counts prove the
    // faults actually fired.
    let _ = writeln!(json, "  \"chaos\": {{");
    let _ = writeln!(
        json,
        "    \"flagship_r2_goodput_tokens_per_sec\": {ch_goodput:.0},"
    );
    let _ = writeln!(json, "    \"failed_share\": {ch_failed:.3},");
    let _ = writeln!(json, "    \"retries\": {ch_retries},");
    let _ = writeln!(json, "    \"respawns\": {ch_restarts}");
    let _ = writeln!(json, "  }},");
    // The demo CNN served end to end through a PipelineGraph (functional
    // conv stages, 2 replicas each): whole-image throughput plus each
    // stage's occupancy and p99 residence — where the dataflow's time
    // actually goes.
    let _ = writeln!(json, "  \"pipeline\": {{");
    let _ = writeln!(json, "    \"demo_cnn_images_per_sec\": {pipe_rate:.0},");
    let _ = writeln!(json, "    \"stages\": {{");
    let last = pipe_stages.len().saturating_sub(1);
    for (i, (name, occupancy, p99_us)) in pipe_stages.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(
            json,
            "      \"{name}\": {{ \"occupancy\": {occupancy:.3}, \"p99_residence_us\": {p99_us:.1} }}{comma}"
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    println!("{json}");
    let dir = maddpipe_bench::results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("BENCH_sim.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
