//! Regenerates **Table I**: energy and area efficiency for
//! Ndec ∈ {4, 8, 16, 32} at 0.5 V and 0.8 V (NS = 32, TTG, 25 °C), with
//! the improvement percentages relative to Ndec = 4 and the paper's
//! published values alongside.

use maddpipe_bench::{emit, render_table};
use maddpipe_core::prelude::*;

fn main() {
    let paper_energy = [
        (0.5, [167.5, 171.8, 174.0, 174.9]),
        (0.8, [73.0, 74.4, 75.1, 75.4]),
    ];
    let paper_area = [(0.5, [1.4, 1.8, 2.0, 2.0]), (0.8, [8.7, 10.8, 11.3, 11.5])];
    let ndecs = [4usize, 8, 16, 32];

    let mut out = String::new();
    for (metric, paper) in [
        ("energy efficiency [TOPS/W]", &paper_energy),
        ("area efficiency [TOPS/mm²]", &paper_area),
    ] {
        let mut rows = Vec::new();
        for &(vdd, ref p) in paper.iter() {
            let values: Vec<f64> = ndecs
                .iter()
                .map(|&ndec| {
                    let cfg = MacroConfig::new(ndec, 32)
                        .with_op(OperatingPoint::new(Volts(vdd), Corner::Ttg));
                    let r = MacroModel::new(cfg).evaluate();
                    if metric.starts_with("energy") {
                        r.tops_per_watt
                    } else {
                        r.tops_per_mm2
                    }
                })
                .collect();
            let base = values[0];
            let mut cells = vec![format!("{vdd:.1} V (model)")];
            for v in &values {
                cells.push(format!("{v:.1} ({:+.1}%)", (v / base - 1.0) * 100.0));
            }
            rows.push(cells);
            let pbase = p[0];
            let mut cells = vec![format!("{vdd:.1} V (paper)")];
            for v in p.iter() {
                cells.push(format!("{v:.1} ({:+.1}%)", (v / pbase - 1.0) * 100.0));
            }
            rows.push(cells);
        }
        out.push_str(&render_table(
            &format!("Table I — {metric} vs Ndec (NS=32)"),
            &["supply", "Ndec=4", "Ndec=8", "Ndec=16", "Ndec=32"],
            &rows,
        ));
        out.push('\n');
    }
    out.push_str(
        "note: gains saturate past Ndec=16 (the paper recommends Ndec=16 as the\n\
         balance point; larger Ndec increases WL wire delay, RCD tree depth, and\n\
         vulnerability to local variation — see ablation_rcd).\n",
    );
    emit("table1", &out);
}
