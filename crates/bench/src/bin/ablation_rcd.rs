//! Ablation for the **per-column read-completion detection** claim
//! (§III-C): Monte-Carlo comparison against the conventional replica-column
//! timing scheme under growing local (column-to-column) variability — the
//! failure mode the paper cites as the reason to give every column its own
//! RCD circuit.

use maddpipe_bench::{emit, render_table};
use maddpipe_sram::replica::ReplicaStudy;

fn main() {
    let columns = 8 * 16; // one block of the flagship macro: 8 cols × Ndec=16
    let mut rows = Vec::new();
    for sigma in [0.02, 0.04, 0.06, 0.08, 0.12] {
        for margin in [1.05, 1.15, 1.30] {
            let out = ReplicaStudy::new(sigma, margin, columns).run(20_000, 42);
            rows.push(vec![
                format!("{:.0}%", sigma * 100.0),
                format!("{margin:.2}×"),
                format!("{:.3}%", out.replica_failure_rate * 100.0),
                format!("{:.3}", out.replica_mean_slack),
                format!("{:.1}%", out.rcd_failure_rate * 100.0),
            ]);
        }
    }
    let mut out = render_table(
        "Ablation — replica-column timing vs per-column RCD (128 columns/block)",
        &[
            "column σ",
            "replica margin",
            "replica failures",
            "replica wasted slack",
            "RCD failures",
        ],
        &rows,
    );
    out.push_str(
        "\na replica column is one sample of the same mismatch distribution as the\n\
         live columns: at realistic σ it either corrupts reads (thin margin) or\n\
         wastes latency (fat margin). The per-column RCD derives each latch strobe\n\
         from the completing column itself and cannot be outrun (paper §III-C).\n",
    );
    emit("ablation_rcd", &out);
}
