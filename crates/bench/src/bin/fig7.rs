//! Regenerates **Fig. 7**: energy, latency and area breakdowns of the
//! macro for Ndec = 4 and Ndec = 16 (NS = 32, 0.5 V, TTG), from the
//! analytic model — and cross-checks the energy split against the
//! event-driven RTL netlist's per-domain energy meter.

use maddpipe_bench::{emit, render_table};
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
use maddpipe_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut out = String::new();
    let mut energy_rows = Vec::new();
    let mut latency_rows = Vec::new();
    let mut area_rows = Vec::new();
    for ndec in [4usize, 16] {
        let cfg = MacroConfig::new(ndec, 32).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
        let model = MacroModel::new(cfg);
        let r = model.evaluate();
        let e = r.block_energy;
        energy_rows.push(vec![
            format!("{ndec}"),
            format!("{:.1}", e.total().as_femtos()),
            format!("{:.1}%", e.decoder_fraction() * 100.0),
            format!("{:.1}%", e.encoder / e.total() * 100.0),
            format!("{:.1}%", e.ctrl / e.total() * 100.0),
        ]);
        for (case, l) in [("best", r.latency_best), ("worst", r.latency_worst)] {
            latency_rows.push(vec![
                format!("{ndec}"),
                case.into(),
                format!("{:.1}", l.total().as_nanos()),
                format!("{:.1}%", l.encoder_fraction() * 100.0),
                format!("{:.1}%", l.decoder / l.total() * 100.0),
                format!("{:.1}%", l.ctrl / l.total() * 100.0),
            ]);
        }
        let a = r.area;
        area_rows.push(vec![
            format!("{ndec}"),
            format!("{:.3}", a.total().as_mm2()),
            format!("{:.1}%", a.decoder_fraction() * 100.0),
            format!("{:.1}%", a.encoder / a.total() * 100.0),
            format!("{:.1}%", (a.ctrl + a.global) / a.total() * 100.0),
        ]);
    }
    out.push_str(&render_table(
        "Fig. 7 A — energy breakdown per block-token (0.5 V, NS=32)",
        &["Ndec", "total [fJ]", "decoder", "encoder", "ctrl"],
        &energy_rows,
    ));
    out.push('\n');
    out.push_str(&render_table(
        "Fig. 7 B — block latency breakdown (0.5 V, NS=32)",
        &["Ndec", "case", "total [ns]", "encoder", "decoder", "ctrl"],
        &latency_rows,
    ));
    out.push('\n');
    out.push_str(&render_table(
        "Fig. 7 C — area breakdown (NS=32)",
        &["Ndec", "total [mm²]", "decoder", "encoder", "ctrl+global"],
        &area_rows,
    ));

    // RTL cross-check: run tokens through a reduced netlist and read the
    // per-domain energy meter. (Reduced NS keeps the event count sane; the
    // per-block split is NS-independent.)
    let cfg = MacroConfig::new(4, 4).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let program = MacroProgram::random(cfg.ndec, cfg.ns, 99);
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    rtl.simulator_mut().reset_energy();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..6 {
        let token: Vec<[i8; SUBVECTOR_LEN]> = (0..cfg.ns)
            .map(|_| {
                let mut x = [0i8; SUBVECTOR_LEN];
                for v in x.iter_mut() {
                    *v = rng.gen_range(-128i32..=127) as i8;
                }
                x
            })
            .collect();
        rtl.run_token(&token).expect("token must complete");
    }
    let report = rtl.simulator().energy_report();
    out.push_str(&format!(
        "\nRTL cross-check (Ndec=4, NS=4, gate-level event energies):\n{report}\n"
    ));
    emit("fig7", &out);
}
