//! Extension experiment — the encoder-family comparison of §II-B: the
//! paper surveys BDT (MADDNESS / Stella Nera / this work), Euclidean
//! nearest-centroid (LUT-NN) and Manhattan nearest-centroid (PECAN /
//! \[21\]) encoding functions. This harness measures their approximation
//! quality on structured data and the hardware cost asymmetry that
//! motivates the BDT choice: a tree evaluates 4 comparators per
//! classification, a nearest-centroid encoder must evaluate all 16
//! distances over all 9 dimensions.

use maddpipe_amm::prelude::*;
use maddpipe_bench::{emit, render_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered(n: usize, d: usize, clusters: usize, noise: f32, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            centers[i % clusters]
                .iter()
                .map(|&v| v + rng.gen_range(-noise..noise))
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    Mat::from_rows(&refs)
}

fn main() {
    let d = 18; // 2 subspaces × 9
    let w = {
        let mut w = Mat::zeros(d, 8);
        let mut rng = StdRng::seed_from_u64(5);
        for v in w.data_mut() {
            *v = rng.gen_range(-0.5..0.5);
        }
        w
    };
    let mut rows = Vec::new();
    for (label, noise) in [
        ("tight clusters", 0.15f32),
        ("loose clusters", 0.6),
        ("diffuse", 1.5),
    ] {
        let x = clustered(600, d, 24, noise, 11);
        let exact = x.matmul(&w);

        // BDT (this work / MADDNESS): train the full operator, measure the
        // deployed INT8 path.
        let op = MaddnessMatmul::train(&x, &w, MaddnessParams::default()).expect("train");
        let bdt_nmse = nmse(&exact, &op.matmul(&x));

        // Centroid encoders (L2 = LUT-NN, L1 = PECAN/[21]): encode per
        // subspace, decode through float LUTs built from the centroids.
        let mut centroid_nmse = [0.0f64; 2];
        for (mi, metric) in [Distance::L2, Distance::L1].iter().enumerate() {
            let mut approx = Mat::zeros(x.rows(), w.cols());
            for s in 0..2 {
                let sub = x.col_range(s * 9, (s + 1) * 9);
                let enc = CentroidEncoder::train(&sub, 16, *metric, 7);
                let mut w_block = Mat::zeros(9, w.cols());
                for r in 0..9 {
                    w_block.row_mut(r).copy_from_slice(w.row(s * 9 + r));
                }
                let lut = enc.centroids().matmul(&w_block);
                for r in 0..x.rows() {
                    let code = enc.encode_one(sub.row(r));
                    for (o, &v) in approx.row_mut(r).iter_mut().zip(lut.row(code)) {
                        *o += v;
                    }
                }
            }
            centroid_nmse[mi] = nmse(&exact, &approx);
        }
        rows.push(vec![
            label.into(),
            format!("{bdt_nmse:.4}"),
            format!("{:.4}", centroid_nmse[0]),
            format!("{:.4}", centroid_nmse[1]),
        ]);
    }
    let mut out = render_table(
        "Encoding functions (§II-B): output NMSE on 2×9-dim data, K=16",
        &[
            "data regime",
            "BDT int8 (this work)",
            "Euclidean (LUT-NN)",
            "Manhattan (PECAN/[21])",
        ],
        &rows,
    );
    out.push_str(
        "\nhardware cost per classification: BDT touches 4 of 15 comparators (4 \n\
         subtractions-equivalent); nearest-centroid evaluates 16 distances × 9 dims\n\
         (≈144 subtract-accumulate) — a ~36× arithmetic gap, which is the reason\n\
         the paper (and MADDNESS) accept the tree's slightly coarser partitions.\n\
         The BDT column includes full INT8 deployment error (quantised inputs,\n\
         thresholds and LUTs); the centroid columns are float, i.e. optimistic.\n",
    );
    emit("encoders", &out);
}
