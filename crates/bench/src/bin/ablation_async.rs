//! Ablation for the **self-synchronous pipeline** claim (§III-A): the same
//! datapath under a margined global clock vs the paper's asynchronous
//! handshake, across corners and supplies.
//!
//! The clocked design must sign off at the slowest corner's worst-case
//! data, pays clock-tree/register energy every cycle, and cannot exploit
//! fast silicon; the asynchronous design runs at actual-silicon,
//! actual-data speed.

use maddpipe_bench::{emit, render_table};
use maddpipe_core::prelude::*;
use maddpipe_core::sync_baseline::SyncPipelineModel;

fn main() {
    let mut rows = Vec::new();
    for vdd in [0.5, 0.8] {
        for corner in [Corner::Ssg, Corner::Ttg, Corner::Ffg] {
            let cfg =
                MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(vdd), corner));
            let sync = SyncPipelineModel::new(cfg).evaluate();
            let async_r = SyncPipelineModel::new(
                MacroConfig::paper_flagship().with_op(OperatingPoint::new(Volts(vdd), corner)),
            )
            .async_counterpart();
            rows.push(vec![
                format!("{vdd:.1}"),
                corner.to_string(),
                format!("{:.3}", sync.tops),
                format!("{:.3}", async_r.tops_avg()),
                format!("{:.2}×", async_r.tops_avg() / sync.tops),
                format!("{:.1}", sync.tops_per_watt),
                format!("{:.1}", async_r.tops_per_watt),
                format!("{:.2}×", async_r.tops_per_watt / sync.tops_per_watt),
            ]);
        }
    }
    let mut out = render_table(
        "Ablation — clocked pipeline vs self-synchronous (Ndec=16, NS=32)",
        &[
            "VDD [V]",
            "corner",
            "sync TOPS",
            "async TOPS",
            "speedup",
            "sync TOPS/W",
            "async TOPS/W",
            "gain",
        ],
        &rows,
    );
    out.push_str(
        "\nthe clocked baseline signs off at SSG worst-case data + 10% margin and\n\
         burns ~150 fF of clock/register capacitance per block per cycle; the\n\
         asynchronous pipeline tracks actual silicon and actual data (paper §III-A).\n",
    );
    emit("ablation_async", &out);
}
