//! Extension experiment — the **T** in PVT: the paper evaluates process
//! corners and supply voltages at a fixed 25 °C, while claiming operation
//! that is robust to all three. The technology model carries temperature
//! (threshold drift + leakage growth), so this harness completes the
//! claim: the self-synchronous beat adapts to temperature exactly as it
//! adapts to corners, while a clocked design would need to sign off at the
//! worst case of *both*.

use maddpipe_bench::{emit, render_table};
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
use maddpipe_core::prelude::*;
use maddpipe_tech::units::Celsius;

fn main() {
    let mut rows = Vec::new();
    for temp in [-40.0, 0.0, 25.0, 85.0, 125.0] {
        let cfg = MacroConfig::paper_flagship()
            .with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg).with_temp(Celsius(temp)));
        let r = MacroModel::new(cfg).evaluate();
        rows.push(vec![
            format!("{temp:.0}"),
            format!("{:.1}", r.latency_best.total().as_nanos()),
            format!("{:.1}", r.latency_worst.total().as_nanos()),
            format!("{:.3}", r.tops_avg()),
            format!("{:.1}", r.tops_per_watt),
            format!("{:.2}", r.leakage.0 * 1e6),
        ]);
    }
    let mut out = render_table(
        "Temperature sweep — flagship macro at 0.5 V / TTG",
        &[
            "temp [°C]",
            "best [ns]",
            "worst [ns]",
            "TOPS (avg)",
            "TOPS/W (dyn)",
            "leakage [µW]",
        ],
        &rows,
    );

    // Functional check on the netlist: hot and cold silicon compute the
    // same answers, with zero timing violations — because every latch
    // strobe tracks the data path (the PVT-invariance mechanism).
    let mut verdicts = Vec::new();
    for temp in [-40.0, 125.0] {
        let cfg = MacroConfig::new(2, 2)
            .with_op(OperatingPoint::new(Volts(0.8), Corner::Ttg).with_temp(Celsius(temp)));
        let program = MacroProgram::random(2, 2, 4);
        let mut rtl = AcceleratorRtl::build(&cfg, &program);
        let token = vec![[23i8; SUBVECTOR_LEN]; 2];
        let result = rtl.run_token(&token).expect("token completes");
        let ok = result.outputs == program.reference_output(&token)
            && rtl.simulator().violations().is_empty();
        verdicts.push(vec![
            format!("{temp:.0} °C"),
            format!("{}", result.latency),
            if ok {
                "exact, no violations".into()
            } else {
                "FAILED".into()
            },
        ]);
    }
    out.push('\n');
    out.push_str(&render_table(
        "RTL functional check across temperature (0.8 V, TTG)",
        &["temp", "token latency", "verdict"],
        &verdicts,
    ));
    out.push_str(
        "\nhot silicon is *faster* in this low-voltage regime (threshold drift wins\n\
         over mobility at 0.5–0.8 V — temperature inversion), and the handshake\n\
         absorbs the change; only leakage degrades with temperature, growing ~10×\n\
         from 25 °C to 125 °C while staying well below dynamic power.\n",
    );
    emit("sweep_temp", &out);
}
