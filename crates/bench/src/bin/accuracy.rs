//! Regenerates the **accuracy row of Table II**: trains a float ResNet9 on
//! the synthetic CIFAR-like task, then evaluates three deployments —
//! float, digital BDT MADDNESS (the proposed macro / Stella Nera
//! algorithm), and the analog noisy Manhattan encoder of \[21\].
//!
//! The reproduced claim is the *ordering* (float ≈ digital > analog) and
//! the fact that the proposed macro is bit-identical to Stella Nera; see
//! DESIGN.md §2 for the dataset substitution rationale.
//!
//! Usage: `cargo run -p maddpipe-bench --bin accuracy --release [--quick]`

use maddpipe_bench::{emit, render_table};
use maddpipe_nn::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (train_per_class, test_per_class, width, epochs) =
        if quick { (16, 8, 4, 3) } else { (48, 24, 8, 8) };

    println!(
        "training float ResNet9 (width {width}) on synthetic CIFAR \
         ({train_per_class}/class train, {test_per_class}/class test)…"
    );
    let (train_set, test_set) = synthetic_cifar(train_per_class, test_per_class, 16, 2026);
    let mut net = ResNet9::new(width, 16, 10, 7);
    let cfg = TrainConfig {
        epochs,
        batch_size: 40,
        lr: 0.08,
        momentum: 0.9,
    };
    let stats = train(&mut net, &train_set, &cfg);
    println!("{stats}");

    let float_acc = evaluate(&mut net, &test_set, 40);
    let calib_len = train_set.len().min(120);
    let (calib, _) = train_set.batch(0, calib_len);

    // Digital (proposed macro == Stella Nera algorithm).
    let mut digital = net.clone();
    let replaced = substitute_digital(&mut digital, &calib, true).expect("substitution");
    let digital_acc = evaluate(&mut digital, &test_set, 40);

    // Analog with increasing delay noise; σ is in L1-distance steps of the
    // thermometer-coded DTC.
    let mut analog_rows = Vec::new();
    let mut analog_headline = 0.0f64;
    for sigma in [0.0, 1.0, 3.0, 6.0] {
        let mut analog = net.clone();
        let _ = substitute_analog(&mut analog, &calib, sigma, 17);
        let acc = evaluate(&mut analog, &test_set, 40);
        if sigma == 3.0 {
            analog_headline = acc;
        }
        analog_rows.push(vec![format!("{sigma:.1}"), format!("{:.1}%", acc * 100.0)]);
    }

    let rows = vec![
        vec![
            "float (fp32)".into(),
            format!("{:.1}%", float_acc * 100.0),
            "–".into(),
        ],
        vec![
            "digital MADDNESS (proposed & [22])".into(),
            format!("{:.1}%", digital_acc * 100.0),
            format!("{replaced} layers substituted"),
        ],
        vec![
            "analog MADDNESS ([21], σ=3)".into(),
            format!("{:.1}%", analog_headline * 100.0),
            "noisy time-domain encoder".into(),
        ],
    ];
    let mut out = render_table(
        "Table II accuracy row — ResNet9 on the synthetic CIFAR task",
        &["deployment", "top-1 accuracy", "notes"],
        &rows,
    );
    out.push('\n');
    out.push_str(&render_table(
        "analog accuracy vs delay-noise σ",
        &["σ [L1 steps]", "top-1 accuracy"],
        &analog_rows,
    ));
    out.push_str(&format!(
        "\npaper (CIFAR-10): analog [21] 89.0% < digital 92.6% (proposed ≡ [22]).\n\
         reproduced ordering: analog {:.1}% << digital {:.1}% < float {:.1}%.\n\
         the proposed macro is bit-identical to [22] by construction (verified in\n\
         tests/rtl_equivalence.rs), so their accuracies coincide exactly. the\n\
         digital-vs-float gap here is larger than the paper's because codebooks\n\
         are learned post hoc; the paper inherits [22]'s training-aware codebooks\n\
         (backprop through the BDT) — see EXPERIMENTS.md.\n",
        analog_headline * 100.0,
        digital_acc * 100.0,
        float_acc * 100.0
    ));
    emit("accuracy", &out);
}
