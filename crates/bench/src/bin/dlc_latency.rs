//! Regenerates **Fig. 4 D/E** behaviour: the data-dependent delay of the
//! dual-rail dynamic-logic comparator, measured on the event-driven
//! netlist — best case decided at the MSB, worst case (equal operands)
//! rippling through all eight stages — plus the resulting block-latency
//! distribution over random inputs.

use maddpipe_bench::{emit, render_table};
use maddpipe_core::dlc::{ripple_depth, to_offset_binary};
use maddpipe_core::macro_rtl::{AcceleratorRtl, MacroProgram};
use maddpipe_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Analytic ripple-depth histogram over all operand pairs.
    let mut hist = [0u64; 9];
    for x in 0..=255u8 {
        for t in 0..=255u8 {
            hist[ripple_depth(x, t)] += 1;
        }
    }
    let rows: Vec<Vec<String>> = (1..=8)
        .map(|d| {
            vec![
                format!("{d}"),
                format!("{}", hist[d]),
                format!("{:.3}%", hist[d] as f64 / 65536.0 * 100.0),
            ]
        })
        .collect();
    let mut out = render_table(
        "DLC ripple depth over all 8-bit operand pairs (Fig. 4 D/E)",
        &["stages traversed", "pairs", "fraction"],
        &rows,
    );

    // RTL: block latency for the boundary input (worst) vs a decisive one
    // (best) at 0.5 V, plus a random-input distribution.
    let cfg = MacroConfig::new(1, 1).with_op(OperatingPoint::new(Volts(0.5), Corner::Ttg));
    let tree = maddpipe_amm::BdtEncoder::from_parts(vec![0, 1, 2, 3], vec![0.0; 15])
        .expect("valid tree")
        .quantize(maddpipe_amm::QuantScale::UNIT);
    let program = MacroProgram {
        trees: vec![tree],
        luts: vec![vec![[1i8; K]]],
    };
    let mut rtl = AcceleratorRtl::build(&cfg, &program);
    let best = rtl.run_token(&[[100i8; SUBVECTOR_LEN]]).expect("token");
    let worst = rtl.run_token(&[[0i8; SUBVECTOR_LEN]]).expect("token");
    let mut rng = StdRng::seed_from_u64(5);
    let mut latencies: Vec<f64> = (0..40)
        .map(|_| {
            let mut x = [0i8; SUBVECTOR_LEN];
            for v in x.iter_mut() {
                *v = rng.gen_range(-128i32..=127) as i8;
            }
            // Confirm the offset-binary machinery is exercised.
            let _ = to_offset_binary(x[0]);
            rtl.run_token(&[x]).expect("token").latency.as_nanos()
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.push_str(&format!(
        "\nRTL single-block latency at 0.5 V:\n\
         decisive input (MSB decides): {}\n\
         boundary input (x = t, full walk): {}\n\
         random inputs: min {:.1} ns / median {:.1} ns / max {:.1} ns (n = {})\n\
         paper block latency spread at 0.5 V: 17.8–32.1 ns (Ndec = 16).\n",
        best.latency,
        worst.latency,
        latencies[0],
        latencies[latencies.len() / 2],
        latencies[latencies.len() - 1],
        latencies.len()
    ));
    emit("dlc_latency", &out);
}
