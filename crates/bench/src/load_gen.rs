//! Multi-client load generator for replica-pool serving.
//!
//! The serving benches need two complementary views of a
//! [`ReplicaPool`]:
//!
//! - **closed loop** — every client keeps a fixed burst in flight and
//!   waits for it to drain; the pool runs flat out, so the interesting
//!   number is throughput (how replica count scales tokens/s), and
//! - **open loop** — requests arrive at a fixed *offered* rate whether
//!   or not earlier ones finished; past saturation the queue fills, the
//!   depth bound pushes back, and the interesting numbers are goodput,
//!   the rejected share and the p99 queue wait.
//!
//! [`drive`] runs either mode from a [`LoadScenario`] and folds every
//! client's replies into one [`LoadReport`]. The generator only uses
//! the public pool API (`submit_with` + ticket waits), so what it
//! measures is exactly what a real multi-threaded client would see.
//!
//! The generator is also fault-tolerant enough to drive a pool wrapped
//! in a [`ChaosBackend`]: accepted tickets that resolve with an error
//! and submissions refused by a dying pool count as
//! [`LoadReport::failed_requests`] — lost goodput, not a generator
//! panic — which is what lets `bench_sim` report goodput *under
//! injected faults* next to the fault-free baseline.

use maddpipe_runtime::prelude::*;
use std::time::{Duration, Instant};

/// How the generator paces its submissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Closed loop: each client submits `requests_per_client` up front
    /// and then waits for all of them — measures capacity.
    Closed {
        /// Requests each client keeps in flight.
        requests_per_client: usize,
    },
    /// Open loop: clients collectively offer `offered_rps` requests per
    /// second for `duration`, regardless of completions — measures
    /// behaviour at and past saturation.
    Open {
        /// Aggregate offered arrival rate, requests per second.
        offered_rps: f64,
        /// How long the arrival process runs.
        duration: Duration,
    },
}

/// A complete load-generation scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadScenario {
    /// Concurrent submitter threads, each with its own client key.
    pub clients: usize,
    /// Tokens in every submitted batch.
    pub tokens_per_request: usize,
    /// Closed- or open-loop pacing.
    pub mode: LoadMode,
    /// Base seed for the generated token batches.
    pub seed: u64,
}

/// What a [`drive`] run observed, folded over every client.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests the generator attempted to submit.
    pub offered_requests: u64,
    /// Requests that resolved with a result.
    pub served_requests: u64,
    /// Requests refused at the door with
    /// [`BackendError::QueueFull`].
    pub rejected_requests: u64,
    /// Requests that were accepted but whose ticket resolved with an
    /// error (retry budget exhausted, replica lost, pool closed
    /// mid-flight), plus submissions refused by an already-dying pool —
    /// the goodput a fault actually cost.
    pub failed_requests: u64,
    /// Tokens across all served requests.
    pub served_tokens: u64,
    /// Wall time of the whole run (submission through last reply).
    pub elapsed: Duration,
    /// Queue waits of every served request, sorted ascending.
    waits: Vec<Duration>,
}

impl LoadReport {
    /// Served tokens per second of wall time; `None` when the run was
    /// too short to measure.
    pub fn goodput_tokens_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        (secs > 0.0).then(|| self.served_tokens as f64 / secs)
    }

    /// Fraction of offered requests that were rejected.
    pub fn rejected_share(&self) -> f64 {
        if self.offered_requests == 0 {
            return 0.0;
        }
        self.rejected_requests as f64 / self.offered_requests as f64
    }

    /// Fraction of offered requests that failed after acceptance.
    pub fn failed_share(&self) -> f64 {
        if self.offered_requests == 0 {
            return 0.0;
        }
        self.failed_requests as f64 / self.offered_requests as f64
    }

    /// The `q`-quantile queue wait over served requests (`q` in 0..=1).
    pub fn wait_quantile(&self, q: f64) -> Option<Duration> {
        if self.waits.is_empty() {
            return None;
        }
        let idx = ((self.waits.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.waits[idx])
    }

    /// Median queue wait.
    pub fn p50_wait(&self) -> Option<Duration> {
        self.wait_quantile(0.50)
    }

    /// 99th-percentile queue wait.
    pub fn p99_wait(&self) -> Option<Duration> {
        self.wait_quantile(0.99)
    }
}

/// What one client thread brings home.
struct ClientTally {
    offered: u64,
    rejected: u64,
    failed: u64,
    served_tokens: u64,
    waits: Vec<Duration>,
}

/// Waits out a burst of tickets, recording served waits/tokens. A
/// ticket that resolves with an error — a fault that outran its retry
/// budget, or QueueClosed on a shutdown race — is lost goodput, not a
/// generator bug: it counts as failed and the run carries on.
fn drain(tickets: Vec<BatchTicket>, tally: &mut ClientTally) {
    for ticket in tickets {
        match ticket.wait() {
            Ok(reply) => {
                tally.served_tokens += reply.result.tokens.len() as u64;
                tally.waits.push(reply.queue_wait);
            }
            Err(_) => tally.failed += 1,
        }
    }
}

/// Runs `scenario` against `pool` and reports what every client saw.
///
/// Closed loop: each client submits its whole burst, then waits.
/// Open loop: each client offers its share of `offered_rps` on a fixed
/// arrival schedule (submissions never block on completions); rejected
/// arrivals count toward [`LoadReport::rejected_requests`].
pub fn drive(pool: &ReplicaPool, scenario: &LoadScenario) -> LoadReport {
    let ns = pool.ns();
    let clients = scenario.clients.max(1);
    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let pool = &pool;
                scope.spawn(move || {
                    let opts = SubmitOptions::default().with_client(client as u64);
                    let mut tally = ClientTally {
                        offered: 0,
                        rejected: 0,
                        failed: 0,
                        served_tokens: 0,
                        waits: Vec::new(),
                    };
                    let mut tickets = Vec::new();
                    let mut submit = |k: usize, tally: &mut ClientTally| {
                        let seed = scenario.seed.wrapping_add((client * 1_000_000 + k) as u64);
                        let batch = TokenBatch::random(ns, scenario.tokens_per_request, seed);
                        tally.offered += 1;
                        match pool.submit_with(batch, opts) {
                            Ok(ticket) => tickets.push(ticket),
                            Err(BackendError::QueueFull { .. }) => tally.rejected += 1,
                            // A chaos run can kill the last replica while
                            // arrivals are still due: being refused by a
                            // dying pool is lost goodput, not a bug.
                            Err(BackendError::QueueClosed) => tally.failed += 1,
                            Err(other) => panic!("load generator hit {other}"),
                        }
                    };
                    match scenario.mode {
                        LoadMode::Closed {
                            requests_per_client,
                        } => {
                            for k in 0..requests_per_client {
                                submit(k, &mut tally);
                            }
                        }
                        LoadMode::Open {
                            offered_rps,
                            duration,
                        } => {
                            // Each client owns an even share of the
                            // aggregate arrival process.
                            let gap = Duration::from_secs_f64(
                                clients as f64 / offered_rps.max(f64::MIN_POSITIVE),
                            );
                            let start = Instant::now();
                            let mut k = 0usize;
                            loop {
                                let due = start + gap.saturating_mul(k as u32);
                                if due.duration_since(start) >= duration {
                                    break;
                                }
                                if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                                    std::thread::sleep(sleep);
                                }
                                submit(k, &mut tally);
                                k += 1;
                            }
                        }
                    }
                    drain(tickets, &mut tally);
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });
    let mut report = LoadReport {
        elapsed: t0.elapsed(),
        ..LoadReport::default()
    };
    for tally in tallies {
        report.offered_requests += tally.offered;
        report.rejected_requests += tally.rejected;
        report.failed_requests += tally.failed;
        report.served_tokens += tally.served_tokens;
        report.served_requests += tally.waits.len() as u64;
        report.waits.extend(tally.waits);
    }
    report.waits.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use maddpipe_core::config::MacroConfig;
    use maddpipe_core::macro_rtl::MacroProgram;

    fn small_pool(replicas: usize, max_depth: usize) -> ReplicaPool {
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
        Session::builder(cfg)
            .program(program)
            .backend(BackendKind::Functional { workers: 1 })
            .into_pool(
                ServePolicy::default()
                    .with_replicas(replicas)
                    .with_fairness(Fairness::RoundRobin)
                    .with_queue(
                        QueuePolicy::default()
                            .with_max_batch(16)
                            .with_max_linger(Duration::from_micros(50))
                            .with_max_depth(max_depth),
                    ),
            )
            .expect("pool comes up")
    }

    #[test]
    fn closed_loop_serves_every_offered_request() {
        let pool = small_pool(2, 4096);
        let report = drive(
            &pool,
            &LoadScenario {
                clients: 4,
                tokens_per_request: 3,
                mode: LoadMode::Closed {
                    requests_per_client: 8,
                },
                seed: 1,
            },
        );
        assert_eq!(report.offered_requests, 32);
        assert_eq!(report.served_requests, 32);
        assert_eq!(report.rejected_requests, 0);
        assert_eq!(report.served_tokens, 96);
        assert_eq!(report.rejected_share(), 0.0);
        assert!(report.p50_wait() <= report.p99_wait());
        let goodput = report.goodput_tokens_per_sec();
        assert!(goodput.is_some_and(|g| g > 0.0), "{goodput:?}");
        pool.shutdown();
    }

    #[test]
    fn open_loop_counts_rejections_against_a_tight_depth_bound() {
        // Depth 1 under a multi-client arrival process: some arrivals
        // must bounce, and every bounce is accounted for.
        let pool = small_pool(1, 1);
        let report = drive(
            &pool,
            &LoadScenario {
                clients: 4,
                tokens_per_request: 2,
                mode: LoadMode::Open {
                    offered_rps: 2_000.0,
                    duration: Duration::from_millis(50),
                },
                seed: 2,
            },
        );
        assert!(report.offered_requests > 0);
        assert_eq!(
            report.served_requests + report.rejected_requests + report.failed_requests,
            report.offered_requests
        );
        assert_eq!(report.served_tokens, report.served_requests * 2);
        pool.shutdown();
    }

    #[test]
    fn chaos_runs_count_faults_as_failures_not_panics() {
        // A 1-replica factory pool (no respawn) whose backend panics on
        // its very first call: the replica quarantines, the pool closes,
        // and everything the generator offered comes back as failed —
        // the generator itself must survive to say so.
        let cfg = MacroConfig::new(2, 2);
        let program = MacroProgram::random(cfg.ndec, cfg.ns, 7);
        let state = ChaosState::new();
        let chaos = ChaosConfig::default().with_panic_on_call(0);
        let factory: BackendFactory = {
            let program = program.clone();
            Box::new(move || {
                BackendKind::Functional { workers: 1 }.build(&MacroConfig::new(2, 2), program)
            })
        };
        let pool = ReplicaPool::from_factories(
            ServePolicy::default()
                .with_queue(QueuePolicy::default().with_max_linger(Duration::ZERO))
                .with_recovery(RecoveryPolicy::none()),
            cfg.ns,
            vec![wrap_factory(factory, chaos, state)],
        )
        .expect("pool comes up");
        let report = drive(
            &pool,
            &LoadScenario {
                clients: 2,
                tokens_per_request: 2,
                mode: LoadMode::Closed {
                    requests_per_client: 4,
                },
                seed: 3,
            },
        );
        assert_eq!(report.offered_requests, 8);
        assert_eq!(
            report.served_requests + report.rejected_requests + report.failed_requests,
            report.offered_requests
        );
        assert!(report.failed_requests > 0, "{report:?}");
        assert!(report.failed_share() > 0.0);
        pool.shutdown();
    }
}
